// Command mppm is the command-line interface to the Multi-Program
// Performance Model reproduction. Every evaluating subcommand is a thin
// adapter that decodes its flags into the shared mppm.Request shape and
// executes it through System.Eval, so the CLI, the library and the
// mppmd service share one evaluation path (cancellation included:
// Ctrl-C aborts a long rank or stress search cleanly).
//
// Subcommands:
//
//	mppm list                        list the synthetic benchmark suite
//	mppm profile  [flags]            run single-core profiling, write JSON
//	mppm predict  [flags]            evaluate MPPM for one mix
//	mppm simulate [flags]            run the detailed reference simulator
//	mppm compare  [flags]            prediction vs. detailed simulation
//	mppm rank     [flags]            rank the six Table 2 LLC configs with MPPM
//	mppm stress   [flags]            find stress workloads with MPPM
//	mppm count    [flags]            count possible workload mixes
//	mppm eval     [flags]            evaluate against a running mppmd (wire transport)
//	mppm cache    warm|ls|verify|gc  manage the persistent artifact store
//
// Run "mppm <subcommand> -h" for per-command flags.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"
	"time"

	mppm "repro"
	"repro/internal/store"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run dispatches a CLI invocation; it is the testable entry point.
func run(args []string, stdout, stderr io.Writer) int {
	if len(args) < 1 {
		usage(stderr)
		return 2
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	cmd, rest := args[0], args[1:]
	var err error
	switch cmd {
	case "list":
		err = cmdList(stdout, rest, stderr)
	case "profile":
		err = cmdProfile(stdout, rest, stderr)
	case "predict":
		err = cmdPredict(ctx, stdout, rest, stderr)
	case "simulate":
		err = cmdSimulate(ctx, stdout, rest, stderr)
	case "compare":
		err = cmdCompare(ctx, stdout, rest, stderr)
	case "rank":
		err = cmdRank(ctx, stdout, rest, stderr)
	case "stress":
		err = cmdStress(ctx, stdout, rest, stderr)
	case "count":
		err = cmdCount(stdout, rest, stderr)
	case "eval":
		err = cmdEval(ctx, stdout, rest, stderr)
	case "cache":
		err = cmdCache(ctx, stdout, rest, stderr)
	case "classify":
		err = cmdClassify(stdout, rest, stderr)
	case "export":
		err = cmdExport(stderr, rest)
	case "trace":
		err = cmdTrace(ctx, stdout, rest, stderr)
	case "-h", "--help", "help":
		usage(stderr)
	default:
		fmt.Fprintf(stderr, "mppm: unknown subcommand %q\n\n", cmd)
		usage(stderr)
		return 2
	}
	if err != nil {
		fmt.Fprintln(stderr, "mppm:", err)
		return 1
	}
	return 0
}

func usage(w io.Writer) {
	fmt.Fprintln(w, `usage: mppm <subcommand> [flags]

subcommands:
  list      list the synthetic benchmark suite
  profile   run single-core profiling for the suite, write profiles JSON
  predict   evaluate MPPM for one workload mix
  simulate  run the detailed multi-core reference simulator for one mix
  compare   run both and report prediction error
  rank      rank the six Table 2 LLC configurations with MPPM
  stress    search for stress workloads with MPPM
  count     count the possible workload mixes (the Section 1 explosion)
  eval      evaluate against a running mppmd (binary wire transport by default)
  cache     manage the persistent artifact store (warm, ls, verify, gc)
  classify  label benchmarks memory- or compute-intensive from profiles
  export    serialize a benchmark's trace to the binary trace format
  trace     fetch and render a request trace from a running mppmd`)
}

// newFlagSet builds a flag set that reports errors instead of exiting,
// so the CLI is testable end to end.
func newFlagSet(name string, stderr io.Writer) *flag.FlagSet {
	fs := flag.NewFlagSet(name, flag.ContinueOnError)
	fs.SetOutput(stderr)
	return fs
}

// scaleFlags adds the common -llc/-n/-interval flags.
type scaleFlags struct {
	llc      *string
	length   *int64
	interval *int64
}

func addScaleFlags(fs *flag.FlagSet) scaleFlags {
	return scaleFlags{
		llc:      fs.String("llc", "config#1", "LLC configuration (Table 2 name)"),
		length:   fs.Int64("n", mppm.DefaultTraceLength, "trace length in instructions"),
		interval: fs.Int64("interval", mppm.DefaultIntervalLength, "profiling interval in instructions"),
	}
}

func (s scaleFlags) system() (*mppm.System, error) {
	llc, err := mppm.LLCConfigByName(*s.llc)
	if err != nil {
		return nil, err
	}
	return mppm.NewSystemScaled(llc, *s.length, *s.interval)
}

func parseMix(s string) (mppm.Mix, error) {
	if s == "" {
		return nil, fmt.Errorf("missing -mix (comma-separated benchmark names)")
	}
	mix := strings.Split(s, ",")
	for i := range mix {
		mix[i] = strings.TrimSpace(mix[i])
		if _, err := mppm.BenchmarkByName(mix[i]); err != nil {
			return nil, err
		}
	}
	return mppm.Mix(mix), nil
}

// loadProfiles reads a profile set written by "mppm profile". An empty
// path returns nil: evaluations then draw on the engine's profile
// cache, computing only the profiles the request actually needs.
func loadProfiles(path string) (*mppm.ProfileSet, error) {
	if path == "" {
		return nil, nil
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return mppm.ReadProfileSet(f)
}

// evalOne runs a single-mix request and returns its scenario.
func evalOne(ctx context.Context, sys *mppm.System, kind mppm.Kind, mix mppm.Mix, opts ...mppm.Option) (*mppm.Scenario, error) {
	res, err := sys.Eval(ctx, mppm.NewRequest(kind, []mppm.Mix{mix}, opts...))
	if err != nil {
		return nil, err
	}
	sc := &res.Scenarios[0]
	if sc.Err != nil {
		return nil, sc.Err
	}
	return sc, nil
}

func cmdList(stdout io.Writer, args []string, stderr io.Writer) error {
	fs := newFlagSet("list", stderr)
	verbose := fs.Bool("v", false, "include region detail")
	if err := fs.Parse(args); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "%-12s %8s %7s %s\n", "benchmark", "footMB", "phases", "regions")
	for _, b := range mppm.Benchmarks() {
		fmt.Fprintf(stdout, "%-12s %8.1f %7d %d\n",
			b.Name, float64(b.Footprint())/(1<<20), len(b.Phases), len(b.Regions))
		if *verbose {
			for _, r := range b.Regions {
				dep := ""
				if r.Dependent {
					dep = " dependent"
				}
				fmt.Fprintf(stdout, "    %-8s %8.1fKB%s\n", r.Kind, float64(r.Size)/1024, dep)
			}
		}
	}
	return nil
}

func cmdProfile(stdout io.Writer, args []string, stderr io.Writer) error {
	fs := newFlagSet("profile", stderr)
	sf := addScaleFlags(fs)
	out := fs.String("out", "", "output file for the profile set JSON (default: stdout)")
	bench := fs.String("bench", "", "profile only these comma-separated benchmarks")
	if err := fs.Parse(args); err != nil {
		return err
	}
	sys, err := sf.system()
	if err != nil {
		return err
	}
	bs := mppm.Benchmarks()
	if *bench != "" {
		var sel []mppm.Benchmark
		for _, n := range strings.Split(*bench, ",") {
			b, err := mppm.BenchmarkByName(strings.TrimSpace(n))
			if err != nil {
				return err
			}
			sel = append(sel, b)
		}
		bs = sel
	}
	set, err := sys.ProfileAll(bs)
	if err != nil {
		return err
	}
	w := stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if err := set.WriteJSON(w); err != nil {
		return err
	}
	fmt.Fprintf(stderr, "profiled %d benchmarks on %s (%d-instruction traces)\n",
		len(bs), sys.LLC().Name, sys.TraceLength())
	return nil
}

func cmdPredict(ctx context.Context, stdout io.Writer, args []string, stderr io.Writer) error {
	fs := newFlagSet("predict", stderr)
	sf := addScaleFlags(fs)
	mixFlag := fs.String("mix", "", "comma-separated benchmark names")
	profiles := fs.String("profiles", "", "profile set JSON from 'mppm profile' (default: engine-cached profiling)")
	model := fs.String("model", "FOA", "contention model (FOA, FOA-reuse, SDC-compete, equal-partition)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	mix, err := parseMix(*mixFlag)
	if err != nil {
		return err
	}
	sys, err := sf.system()
	if err != nil {
		return err
	}
	set, err := loadProfiles(*profiles)
	if err != nil {
		return err
	}
	cm, err := mppm.ContentionModelByName(*model)
	if err != nil {
		return err
	}
	sc, err := evalOne(ctx, sys, mppm.KindPredict, mix,
		mppm.WithProfiles(set), mppm.WithOptions(mppm.ModelOptions{Contention: cm}))
	if err != nil {
		return err
	}
	pred := sc.Prediction
	fmt.Fprintf(stdout, "MPPM prediction for [%s] on %s (%s):\n",
		strings.Join(mix, " "), sys.LLC().Name, cm.Name())
	fmt.Fprintf(stdout, "  %-12s %10s %10s %10s\n", "program", "CPI(SC)", "CPI(MC)", "slowdown")
	for i, n := range pred.Benchmarks {
		fmt.Fprintf(stdout, "  %-12s %10.3f %10.3f %9.2fx\n",
			n, pred.SingleCPI[i], pred.MultiCPI[i], pred.Slowdown[i])
	}
	fmt.Fprintf(stdout, "  STP %.3f   ANTT %.3f   (%d iterations)\n",
		pred.STP, pred.ANTT, pred.Iterations)
	return nil
}

func cmdSimulate(ctx context.Context, stdout io.Writer, args []string, stderr io.Writer) error {
	fs := newFlagSet("simulate", stderr)
	sf := addScaleFlags(fs)
	mixFlag := fs.String("mix", "", "comma-separated benchmark names")
	if err := fs.Parse(args); err != nil {
		return err
	}
	mix, err := parseMix(*mixFlag)
	if err != nil {
		return err
	}
	sys, err := sf.system()
	if err != nil {
		return err
	}
	sc, err := evalOne(ctx, sys, mppm.KindSimulate, mix)
	if err != nil {
		return err
	}
	meas := sc.Measurement
	fmt.Fprintf(stdout, "detailed simulation of [%s] on %s:\n", strings.Join(mix, " "), sys.LLC().Name)
	fmt.Fprintf(stdout, "  %-12s %10s %10s %10s\n", "program", "CPI(SC)", "CPI(MC)", "slowdown")
	for i, n := range meas.Benchmarks {
		fmt.Fprintf(stdout, "  %-12s %10.3f %10.3f %9.2fx\n",
			n, meas.SingleCPI[i], meas.MultiCPI[i], meas.Slowdown[i])
	}
	fmt.Fprintf(stdout, "  STP %.3f   ANTT %.3f\n", meas.STP, meas.ANTT)
	return nil
}

func cmdCompare(ctx context.Context, stdout io.Writer, args []string, stderr io.Writer) error {
	fs := newFlagSet("compare", stderr)
	sf := addScaleFlags(fs)
	mixFlag := fs.String("mix", "", "comma-separated benchmark names")
	profiles := fs.String("profiles", "", "profile set JSON (default: engine-cached profiling)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	mix, err := parseMix(*mixFlag)
	if err != nil {
		return err
	}
	sys, err := sf.system()
	if err != nil {
		return err
	}
	set, err := loadProfiles(*profiles)
	if err != nil {
		return err
	}
	sc, err := evalOne(ctx, sys, mppm.KindCompare, mix, mppm.WithProfiles(set))
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "MPPM vs. detailed simulation for [%s] on %s:\n",
		strings.Join(mix, " "), sys.LLC().Name)
	fmt.Fprintf(stdout, "  %-12s %12s %12s %10s\n", "program", "measured MC", "predicted MC", "error")
	for i, n := range sc.Measurement.Benchmarks {
		m, p := sc.Measurement.MultiCPI[i], sc.Prediction.MultiCPI[i]
		fmt.Fprintf(stdout, "  %-12s %12.3f %12.3f %+9.1f%%\n", n, m, p, (p-m)/m*100)
	}
	fmt.Fprintf(stdout, "  STP  measured %.3f predicted %.3f (%+.1f%%)\n",
		sc.Measurement.STP, sc.Prediction.STP, sc.STPError()*100)
	fmt.Fprintf(stdout, "  ANTT measured %.3f predicted %.3f (%+.1f%%)\n",
		sc.Measurement.ANTT, sc.Prediction.ANTT, sc.ANTTError()*100)
	return nil
}

func cmdRank(ctx context.Context, stdout io.Writer, args []string, stderr io.Writer) error {
	fs := newFlagSet("rank", stderr)
	mixes := fs.Int("mixes", 1000, "number of random mixes to evaluate per config")
	cores := fs.Int("cores", 4, "programs per mix")
	seed := fs.Int64("seed", 1, "mix sampling seed")
	length := fs.Int64("n", mppm.DefaultTraceLength, "trace length in instructions")
	interval := fs.Int64("interval", mppm.DefaultIntervalLength, "profiling interval")
	if err := fs.Parse(args); err != nil {
		return err
	}
	ms, err := mppm.RandomMixes(*mixes, *cores, *seed)
	if err != nil {
		return err
	}
	sys, err := mppm.NewSystemScaled(mppm.DefaultLLC(), *length, *interval)
	if err != nil {
		return err
	}
	// The whole 6-config x N-mix grid is one request; the engine computes
	// each (benchmark, LLC) profile exactly once across it.
	res, err := sys.Eval(ctx, mppm.NewRequest(mppm.KindPredict, ms,
		mppm.WithConfigs(mppm.LLCConfigs()...)))
	if err != nil {
		return err
	}
	if err := res.Err(); err != nil {
		return err
	}
	type row struct {
		name      string
		stp, antt float64
	}
	rows := make([]row, len(res.Configs))
	for c, llc := range res.Configs {
		rows[c] = row{llc.Name, res.MeanSTP(c), res.MeanANTT(c)}
		fmt.Fprintf(stderr, "ranked %s\n", llc.Name)
	}
	sort.Slice(rows, func(a, b int) bool { return rows[a].stp > rows[b].stp })
	fmt.Fprintf(stdout, "MPPM ranking over %d %d-program mixes (best STP first):\n", *mixes, *cores)
	fmt.Fprintf(stdout, "  %-10s %10s %10s\n", "config", "avg STP", "avg ANTT")
	for _, r := range rows {
		fmt.Fprintf(stdout, "  %-10s %10.4f %10.4f\n", r.name, r.stp, r.antt)
	}
	return nil
}

func cmdStress(ctx context.Context, stdout io.Writer, args []string, stderr io.Writer) error {
	fs := newFlagSet("stress", stderr)
	sf := addScaleFlags(fs)
	mixes := fs.Int("mixes", 2000, "number of random mixes to search")
	cores := fs.Int("cores", 4, "programs per mix")
	k := fs.Int("k", 10, "how many stress workloads to report")
	seed := fs.Int64("seed", 1, "mix sampling seed")
	profiles := fs.String("profiles", "", "profile set JSON (default: engine-cached profiling)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *k < 1 {
		return fmt.Errorf("stress: k < 1")
	}
	sys, err := sf.system()
	if err != nil {
		return err
	}
	set, err := loadProfiles(*profiles)
	if err != nil {
		return err
	}
	ms, err := mppm.RandomMixes(*mixes, *cores, *seed)
	if err != nil {
		return err
	}
	res, err := sys.Eval(ctx, mppm.NewRequest(mppm.KindPredict, ms,
		mppm.WithProfiles(set), mppm.WithTopK(*k)))
	if err != nil {
		return err
	}
	if err := res.Err(); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "worst %d of %d mixes by predicted STP on %s:\n", *k, *mixes, sys.LLC().Name)
	for i := range res.Scenarios {
		sc := &res.Scenarios[i]
		prog, slow := sc.Prediction.MaxSlowdown()
		fmt.Fprintf(stdout, "  %2d. STP %6.3f  worst program %s (%.2fx)  [%s]\n",
			i+1, sc.STP(), prog, slow, strings.Join(sc.Mix, " "))
	}
	return nil
}

func cmdClassify(stdout io.Writer, args []string, stderr io.Writer) error {
	fs := newFlagSet("classify", stderr)
	sf := addScaleFlags(fs)
	profiles := fs.String("profiles", "", "profile set JSON (default: profile in-process)")
	threshold := fs.Float64("threshold", mppm.DefaultMemIntensityThreshold,
		"memory-intensity threshold (MemCPI/CPI)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	sys, err := sf.system()
	if err != nil {
		return err
	}
	set, err := loadProfiles(*profiles)
	if err != nil {
		return err
	}
	if set == nil {
		if set, err = sys.ProfileAll(mppm.Benchmarks()); err != nil {
			return err
		}
	}
	classes := mppm.Classify(set, *threshold)
	names := set.Names()
	fmt.Fprintf(stdout, "%-12s %6s %8s\n", "benchmark", "class", "memInt")
	for _, n := range names {
		p, err := set.Get(n)
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "%-12s %6s %8.3f\n", n, classes[n], p.MemIntensity())
	}
	return nil
}

func cmdExport(stderr io.Writer, args []string) error {
	fs := newFlagSet("export", stderr)
	bench := fs.String("bench", "", "benchmark name")
	length := fs.Int64("n", 1_000_000, "trace length in instructions")
	out := fs.String("out", "", "output file (required)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *out == "" {
		return fmt.Errorf("export: missing -out")
	}
	b, err := mppm.BenchmarkByName(*bench)
	if err != nil {
		return err
	}
	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := mppm.ExportTrace(f, b, *length); err != nil {
		return err
	}
	fmt.Fprintf(stderr, "wrote %s (%d instructions) to %s\n", *bench, *length, *out)
	return nil
}

// cmdCache dispatches the artifact-store subcommand family. Every
// subcommand takes -store naming the store directory; warm fills it,
// ls/verify inspect it, gc bounds its size.
func cmdCache(ctx context.Context, stdout io.Writer, args []string, stderr io.Writer) error {
	if len(args) < 1 {
		fmt.Fprintln(stderr, `usage: mppm cache <warm|ls|verify|gc> -store DIR [flags]

subcommands:
  warm    profile the suite into the store (see -configs)
  ls      list the store's artifacts
  verify  fully decode every artifact, report corruption
  gc      delete oldest artifacts until the store fits -max-bytes`)
		return fmt.Errorf("cache: missing subcommand")
	}
	switch args[0] {
	case "warm":
		return cmdCacheWarm(ctx, stdout, args[1:], stderr)
	case "ls":
		return cmdCacheLs(stdout, args[1:], stderr)
	case "verify":
		return cmdCacheVerify(stdout, args[1:], stderr)
	case "gc":
		return cmdCacheGC(stdout, args[1:], stderr)
	default:
		return fmt.Errorf("cache: unknown subcommand %q (want warm, ls, verify or gc)", args[0])
	}
}

// storeDirFlag adds the required -store flag.
func storeDirFlag(fs *flag.FlagSet) *string {
	return fs.String("store", "", "artifact store directory (required)")
}

func openStore(dir string) (*store.Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("cache: missing -store (artifact store directory)")
	}
	return store.Open(dir), nil
}

// cmdCacheWarm profiles the synthetic suite under the requested LLC
// configurations through a store-backed system, persisting every
// recording and profile it computes — the offline half of a replica
// fleet's instant cold start: run `mppm cache warm` once (or in CI) and
// every mppmd replica started with -store on the same directory serves
// its warmup from disk.
func cmdCacheWarm(ctx context.Context, stdout io.Writer, args []string, stderr io.Writer) error {
	fs := newFlagSet("cache warm", stderr)
	dir := storeDirFlag(fs)
	configs := fs.String("configs", "all", `LLC configurations to warm: "all" or a comma-separated Table 2 list`)
	length := fs.Int64("n", mppm.DefaultTraceLength, "trace length in instructions")
	interval := fs.Int64("interval", mppm.DefaultIntervalLength, "profiling interval in instructions")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *dir == "" {
		return fmt.Errorf("cache warm: missing -store (artifact store directory)")
	}
	var llcs []mppm.LLCConfig
	if *configs == "all" || *configs == "" {
		llcs = mppm.LLCConfigs()
	} else {
		for _, name := range strings.Split(*configs, ",") {
			llc, err := mppm.LLCConfigByName(strings.TrimSpace(name))
			if err != nil {
				return err
			}
			llcs = append(llcs, llc)
		}
	}
	sys := mppm.NewSystem(mppm.DefaultLLC(),
		mppm.WithScale(*length, *interval),
		mppm.WithStore(*dir))
	start := time.Now()
	n, err := sys.Warm(ctx, llcs...)
	if err != nil {
		return err
	}
	st, _, _ := sys.StoreStats()
	fmt.Fprintf(stdout, "warmed %d profiles (%d configs) in %s: %d persisted, %d already present, %d store hits\n",
		n, len(llcs), time.Since(start).Round(time.Millisecond),
		st.Saves, st.SaveSkips, st.RecordingHits+st.ProfileHits)
	if st.SaveErrors > 0 {
		return fmt.Errorf("cache warm: %d store writes failed", st.SaveErrors)
	}
	return nil
}

func cmdCacheLs(stdout io.Writer, args []string, stderr io.Writer) error {
	fs := newFlagSet("cache ls", stderr)
	dir := storeDirFlag(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	st, err := openStore(*dir)
	if err != nil {
		return err
	}
	entries, err := st.List()
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "%-10s %-12s %-10s %10s %10s %10s\n",
		"kind", "benchmark", "llc", "trace", "interval", "bytes")
	var total int64
	for _, e := range entries {
		total += e.SizeBytes
		if e.Err != nil {
			fmt.Fprintf(stdout, "%-10s %s: %v\n", "BAD", e.Path, e.Err)
			continue
		}
		llc := e.LLC
		if llc == "" {
			llc = "-"
		}
		fmt.Fprintf(stdout, "%-10s %-12s %-10s %10d %10d %10d\n",
			e.Kind, e.Benchmark, llc, e.TraceLength, e.IntervalLength, e.SizeBytes)
	}
	fmt.Fprintf(stdout, "%d artifacts, %d bytes\n", len(entries), total)
	return nil
}

func cmdCacheVerify(stdout io.Writer, args []string, stderr io.Writer) error {
	fs := newFlagSet("cache verify", stderr)
	dir := storeDirFlag(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	st, err := openStore(*dir)
	if err != nil {
		return err
	}
	entries, bad, err := st.Verify()
	if err != nil {
		return err
	}
	for _, e := range entries {
		if e.Err != nil {
			fmt.Fprintf(stdout, "BAD  %s: %v\n", e.Path, e.Err)
		} else {
			fmt.Fprintf(stdout, "ok   %s (%s %s)\n", e.Path, e.Kind, e.Benchmark)
		}
	}
	fmt.Fprintf(stdout, "verified %d artifacts, %d bad\n", len(entries), bad)
	if bad > 0 {
		return fmt.Errorf("cache verify: %d corrupt artifacts (run 'mppm cache gc' or delete them; the engine recomputes on the next miss)", bad)
	}
	return nil
}

func cmdCacheGC(stdout io.Writer, args []string, stderr io.Writer) error {
	fs := newFlagSet("cache gc", stderr)
	dir := storeDirFlag(fs)
	maxBytes := fs.Int64("max-bytes", -1, "target store size in bytes (required; 0 empties the store)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	st, err := openStore(*dir)
	if err != nil {
		return err
	}
	if *maxBytes < 0 {
		return fmt.Errorf("cache gc: missing -max-bytes (target store size)")
	}
	removed, freed, err := st.GC(*maxBytes)
	if err != nil {
		return err
	}
	size, err := st.SizeBytes()
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "removed %d artifacts (%d bytes), store now %d bytes\n", removed, freed, size)
	return nil
}

func cmdCount(stdout io.Writer, args []string, stderr io.Writer) error {
	fs := newFlagSet("count", stderr)
	n := fs.Int("benchmarks", 29, "number of benchmarks")
	m := fs.Int("cores", 4, "number of hardware contexts")
	if err := fs.Parse(args); err != nil {
		return err
	}
	c, err := mppm.NumMixes(*n, *m)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "C(%d+%d-1, %d) = %d possible multi-program workloads\n", *n, *m, *m, c)
	return nil
}
