package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sort"
	"strings"
	"text/tabwriter"
	"time"

	"repro/internal/service"
)

// maxTraceBody bounds a fetched trace or index document.
const maxTraceBody = 4 << 20

// cmdTrace reads a running mppmd's trace flight recorder. With only a
// server URL it lists the recorder's index (recent, slowest, errored
// traces); with a trace ID it fetches that trace — stitched across the
// fleet when the server is a coordinator — and renders an ASCII
// waterfall, one row per span, with a lane column naming the replica
// that recorded it.
func cmdTrace(ctx context.Context, stdout io.Writer, args []string, stderr io.Writer) error {
	fs := newFlagSet("trace", stderr)
	width := fs.Int("width", 48, "waterfall column width in characters")
	fs.Usage = func() {
		fmt.Fprintln(stderr, "usage: mppm trace [flags] <server-url> [trace-id]")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() < 1 || fs.NArg() > 2 {
		fs.Usage()
		return fmt.Errorf("trace: expected <server-url> [trace-id]")
	}
	if *width < 8 {
		return fmt.Errorf("trace: -width must be at least 8")
	}
	base := strings.TrimRight(fs.Arg(0), "/")
	if fs.NArg() == 1 {
		var idx service.TraceIndexResponse
		if err := getTraceJSON(ctx, base+"/v1/debug/traces", &idx); err != nil {
			return err
		}
		return printTraceIndex(stdout, idx)
	}
	id := fs.Arg(1)
	var tr service.TraceResponse
	if err := getTraceJSON(ctx, base+"/v1/debug/traces/"+url.PathEscape(id), &tr); err != nil {
		return err
	}
	if len(tr.Spans) == 0 {
		return fmt.Errorf("trace: trace %q has no spans", id)
	}
	printWaterfall(stdout, tr, *width)
	return nil
}

// getTraceJSON fetches one debug endpoint and decodes its JSON body.
func getTraceJSON(ctx context.Context, u string, v any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return fmt.Errorf("trace: fetch %s: %w", u, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, maxTraceBody))
	if err != nil {
		return fmt.Errorf("trace: fetch %s: %w", u, err)
	}
	if resp.StatusCode != http.StatusOK {
		snippet := strings.TrimSpace(string(body))
		if len(snippet) > 200 {
			snippet = snippet[:200]
		}
		if resp.StatusCode == http.StatusNotFound && snippet == "404 page not found" {
			return fmt.Errorf("trace: %s: status 404 (is the server running with -trace-sample > 0?)", u)
		}
		return fmt.Errorf("trace: %s: status %d: %s", u, resp.StatusCode, snippet)
	}
	if err := json.Unmarshal(body, v); err != nil {
		return fmt.Errorf("trace: undecodable response from %s: %w", u, err)
	}
	return nil
}

// printTraceIndex renders the recorder's three retention rings as
// tables of trace summaries.
func printTraceIndex(w io.Writer, idx service.TraceIndexResponse) error {
	sections := []struct {
		title string
		rows  []service.TraceSummaryJSON
	}{
		{"recent", idx.Recent},
		{"slowest", idx.Slowest},
		{"errored", idx.Errored},
	}
	any := false
	for _, sec := range sections {
		if len(sec.rows) == 0 {
			continue
		}
		any = true
		fmt.Fprintf(w, "%s:\n", sec.title)
		tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "  TRACE\tROOT\tSTART\tDURATION\tSPANS\tERR")
		for _, t := range sec.rows {
			errCol := ""
			if t.Err != "" {
				errCol = t.Err
			}
			spans := fmt.Sprintf("%d", t.Spans)
			if t.Dropped > 0 {
				spans += fmt.Sprintf(" (+%d dropped)", t.Dropped)
			}
			fmt.Fprintf(tw, "  %s\t%s\t%s\t%s\t%s\t%s\n",
				t.TraceID, t.Root,
				time.Unix(0, t.StartNano).UTC().Format("15:04:05.000"),
				time.Duration(t.DurNano), spans, errCol)
		}
		tw.Flush()
		fmt.Fprintln(w)
	}
	if !any {
		fmt.Fprintln(w, "no traces recorded (is -trace-sample > 0, and has traffic arrived?)")
	}
	return nil
}

// printWaterfall renders one trace as an indented span tree with a
// proportional timeline bar per row. Spans whose parent is missing from
// the document (dropped, or still open on a replica) render as extra
// roots rather than being hidden.
func printWaterfall(w io.Writer, tr service.TraceResponse, width int) {
	spans := tr.Spans
	sort.SliceStable(spans, func(i, j int) bool {
		if spans[i].StartNano != spans[j].StartNano {
			return spans[i].StartNano < spans[j].StartNano
		}
		return spans[i].SpanID < spans[j].SpanID
	})

	byID := make(map[string]int, len(spans))
	for i, sp := range spans {
		byID[sp.SpanID] = i
	}
	children := make(map[string][]int, len(spans))
	var roots []int
	for i, sp := range spans {
		if _, ok := byID[sp.Parent]; sp.Parent != "" && ok {
			children[sp.Parent] = append(children[sp.Parent], i)
		} else {
			roots = append(roots, i)
		}
	}

	minStart, maxEnd := spans[0].StartNano, spans[0].StartNano
	for _, sp := range spans {
		if sp.StartNano < minStart {
			minStart = sp.StartNano
		}
		if end := sp.StartNano + sp.DurNano; end > maxEnd {
			maxEnd = end
		}
	}
	total := maxEnd - minStart
	if total <= 0 {
		total = 1
	}

	fmt.Fprintf(w, "trace %s: %d spans, %s total\n\n",
		tr.TraceID, len(spans), time.Duration(total))
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "LANE\tSPAN\tDURATION\tTIMELINE")
	var walk func(i, depth int)
	walk = func(i, depth int) {
		sp := spans[i]
		lane := sp.Replica
		if lane == "" {
			lane = "(local)"
		}
		name := strings.Repeat("  ", depth) + sp.Component + ":" + sp.Name
		if sp.Err != "" {
			name += " !err"
		}
		fmt.Fprintf(tw, "%s\t%s\t%s\t|%s|\n",
			lane, name, time.Duration(sp.DurNano),
			timelineBar(sp.StartNano-minStart, sp.DurNano, total, width))
		for _, c := range children[sp.SpanID] {
			walk(c, depth+1)
		}
	}
	for _, r := range roots {
		walk(r, 0)
	}
	tw.Flush()
}

// timelineBar scales one span's [offset, offset+dur) window onto a
// width-character lane. A span too short to cover a cell still gets one
// '#' so instantaneous spans (queue waits, joins) remain visible.
func timelineBar(offset, dur, total int64, width int) string {
	lo := int(offset * int64(width) / total)
	hi := int((offset + dur) * int64(width) / total)
	if lo >= width {
		lo = width - 1
	}
	if hi <= lo {
		hi = lo + 1
	}
	if hi > width {
		hi = width
	}
	return strings.Repeat(" ", lo) + strings.Repeat("#", hi-lo) + strings.Repeat(" ", width-hi)
}
