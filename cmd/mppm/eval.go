package main

import (
	"context"
	"fmt"
	"io"
	"strings"

	"repro/internal/fleet"
	"repro/internal/service"
)

// cmdEval evaluates against a running mppmd instead of in-process: the
// CLI face of the /v1/eval wire protocol. The exchange defaults to the
// binary stream format when the server's advertised wire version
// matches this build (negotiated via /v1/version, exactly like fleet
// shard transport) and falls back to NDJSON otherwise; -json forces the
// fallback. Rows print as NDJSON in grid order either way, so output is
// transport-independent.
func cmdEval(ctx context.Context, stdout io.Writer, args []string, stderr io.Writer) error {
	fs := newFlagSet("eval", stderr)
	server := fs.String("server", "", "base URL of a running mppmd (e.g. http://localhost:8080)")
	kind := fs.String("kind", "predict", "evaluation kind: predict, simulate or compare")
	mixesArg := fs.String("mixes", "", `workload mixes: comma-separated programs, ";"-separated mixes (e.g. "mcf,lbm;gamess,milc")`)
	configsArg := fs.String("configs", "", "comma-separated Table 2 LLC configs (empty = server default)")
	contention := fs.String("contention", "", "contention model name (empty = server default)")
	forceJSON := fs.Bool("json", false, "force NDJSON transport instead of the binary wire format")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *server == "" {
		return fmt.Errorf("eval: -server is required")
	}
	req := service.EvalRequest{Kind: *kind, Contention: *contention, Stream: true}
	for _, m := range strings.Split(*mixesArg, ";") {
		if m = strings.TrimSpace(m); m == "" {
			continue
		}
		mix, err := parseMix(m)
		if err != nil {
			return err
		}
		req.Mixes = append(req.Mixes, mix)
	}
	if len(req.Mixes) == 0 {
		return fmt.Errorf("eval: -mixes is required")
	}
	for _, c := range strings.Split(*configsArg, ",") {
		if c = strings.TrimSpace(c); c != "" {
			req.Configs = append(req.Configs, c)
		}
	}

	cl := fleet.NewClient(*server, nil)
	if *forceJSON {
		cl.DisableWire()
	}
	if err := cl.Check(ctx); err != nil {
		return fmt.Errorf("eval: %w", err)
	}
	return cl.StreamEval(ctx, req, func(sc *service.ScenarioResult) error {
		line, err := service.MarshalScenarioLine(sc)
		if err != nil {
			return err
		}
		_, err = stdout.Write(line)
		return err
	})
}
