package main

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"

	mppm "repro"
	"repro/internal/service"
	"repro/internal/wire"
)

// evalServer stands up an in-process mppmd at test scale, recording the
// Content-Type of every /v1/eval post so the test can see which
// transport the CLI negotiated.
func evalServer(t *testing.T) (*httptest.Server, *atomic.Value) {
	t.Helper()
	sys := mppm.NewSystem(mppm.DefaultLLC(), mppm.WithScale(200_000, 10_000))
	h := service.New(sys).Handler()
	var evalCT atomic.Value
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/v1/eval" {
			evalCT.Store(r.Header.Get("Content-Type"))
		}
		h.ServeHTTP(w, r)
	}))
	t.Cleanup(ts.Close)
	return ts, &evalCT
}

// TestEvalSubcommand drives "mppm eval" against a live server: the
// default binary wire exchange and the -json fallback must print
// byte-identical NDJSON, and the negotiated request transports must
// actually differ.
func TestEvalSubcommand(t *testing.T) {
	ts, evalCT := evalServer(t)
	args := []string{"eval", "-server", ts.URL,
		"-kind", "predict", "-mixes", "gamess,lbm;mcf,milc", "-configs", "config#1,config#2"}

	var wireOut, wireErr bytes.Buffer
	if got := run(args, &wireOut, &wireErr); got != 0 {
		t.Fatalf("eval exit %d: %s", got, wireErr.String())
	}
	if ct, _ := evalCT.Load().(string); ct != wire.ContentType {
		t.Fatalf("default eval posted Content-Type %q, want %q", ct, wire.ContentType)
	}

	var jsonOut, jsonErr bytes.Buffer
	if got := run(append(args, "-json"), &jsonOut, &jsonErr); got != 0 {
		t.Fatalf("eval -json exit %d: %s", got, jsonErr.String())
	}
	if ct, _ := evalCT.Load().(string); ct != "application/json" {
		t.Fatalf("-json eval posted Content-Type %q, want application/json", ct)
	}

	if !bytes.Equal(wireOut.Bytes(), jsonOut.Bytes()) {
		t.Fatalf("transport leaked into output\nwire: %s\njson: %s", wireOut.String(), jsonOut.String())
	}
	lines := strings.Split(strings.TrimSpace(wireOut.String()), "\n")
	if len(lines) != 4 { // 2 mixes x 2 configs
		t.Fatalf("%d rows, want 4:\n%s", len(lines), wireOut.String())
	}
	for _, line := range lines {
		if !strings.HasPrefix(line, `{"mix":`) {
			t.Errorf("row is not an NDJSON scenario line: %s", line)
		}
	}
	for _, want := range []string{`"config":"config#1"`, `"config":"config#2"`, `"prediction"`} {
		if !strings.Contains(wireOut.String(), want) {
			t.Errorf("output missing %s", want)
		}
	}
}

func TestEvalSubcommandErrors(t *testing.T) {
	ts, _ := evalServer(t)
	cases := []struct {
		name string
		args []string
	}{
		{"missing server", []string{"eval", "-mixes", "gamess,lbm"}},
		{"missing mixes", []string{"eval", "-server", ts.URL}},
		{"unknown benchmark", []string{"eval", "-server", ts.URL, "-mixes", "nope"}},
		{"bad config", []string{"eval", "-server", ts.URL, "-mixes", "gamess,lbm", "-configs", "config#9"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			if got := run(tc.args, &stdout, &stderr); got != 1 {
				t.Fatalf("exit %d, want 1 (stderr: %s)", got, stderr.String())
			}
			if stdout.Len() != 0 {
				t.Errorf("failure wrote to stdout: %s", stdout.String())
			}
			if stderr.Len() == 0 {
				t.Error("failure produced no stderr diagnostics")
			}
		})
	}
}
