package main

import (
	"bytes"
	"net/http/httptest"
	"strings"
	"testing"

	mppm "repro"
	"repro/internal/obs"
	"repro/internal/service"
)

// TestTraceSubcommand drives "mppm trace" end to end against a live
// traced mppmd: an eval produces a trace, the bare invocation lists it
// in the index, and the per-trace invocation renders a waterfall with
// the span tree.
func TestTraceSubcommand(t *testing.T) {
	obs.SetTraceSampleRate(1)
	obs.ResetTraces()
	t.Cleanup(func() {
		obs.SetTraceSampleRate(0)
		obs.ResetTraces()
	})
	sys := mppm.NewSystem(mppm.DefaultLLC(), mppm.WithScale(200_000, 10_000))
	ts := httptest.NewServer(service.New(sys, service.WithTraceDebug()).Handler())
	t.Cleanup(ts.Close)

	var out, errs bytes.Buffer
	if got := run([]string{"eval", "-server", ts.URL,
		"-kind", "predict", "-mixes", "gamess,lbm"}, &out, &errs); got != 0 {
		t.Fatalf("eval exit %d: %s", got, errs.String())
	}

	out.Reset()
	errs.Reset()
	if got := run([]string{"trace", ts.URL}, &out, &errs); got != 0 {
		t.Fatalf("trace index exit %d: %s", got, errs.String())
	}
	index := out.String()
	if !strings.Contains(index, "recent:") || !strings.Contains(index, "POST /v1/eval") {
		t.Fatalf("index output missing the recorded trace:\n%s", index)
	}

	// The CLI's own debug requests are traced too at rate 1, so pick the
	// eval's trace by its root span rather than taking the newest.
	var traceID string
	recent, _, _ := obs.TraceIndex()
	for _, s := range recent {
		if s.Root == "POST /v1/eval" {
			traceID = s.TraceID
			break
		}
	}
	if traceID == "" {
		t.Fatalf("eval trace not recorded; index: %+v", recent)
	}

	out.Reset()
	errs.Reset()
	if got := run([]string{"trace", ts.URL, traceID}, &out, &errs); got != 0 {
		t.Fatalf("trace waterfall exit %d: %s", got, errs.String())
	}
	waterfall := out.String()
	for _, want := range []string{
		"trace " + traceID, "service:POST /v1/eval", "engine:engine.run", "(local)", "#",
	} {
		if !strings.Contains(waterfall, want) {
			t.Fatalf("waterfall missing %q:\n%s", want, waterfall)
		}
	}
	// Children render indented under the root.
	rootLine, runLine := -1, -1
	for i, line := range strings.Split(waterfall, "\n") {
		if strings.Contains(line, "service:POST /v1/eval") {
			rootLine = i
		}
		if strings.Contains(line, "engine:engine.run") {
			runLine = i
		}
	}
	if rootLine < 0 || runLine < rootLine {
		t.Fatalf("engine.run not rendered under the server root:\n%s", waterfall)
	}

	var errOut bytes.Buffer
	if got := run([]string{"trace", ts.URL, "deadbeef"}, &out, &errOut); got == 0 {
		t.Fatal("unknown trace ID exited 0")
	}
}
