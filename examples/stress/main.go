// Stress: the Section 6 use case. Search thousands of workload mixes
// with MPPM — far more than detailed simulation could cover — and report
// the ones that stress the machine hardest (lowest predicted STP), plus
// the benchmarks most sensitive to cache sharing.
//
// Run with: go run ./examples/stress
package main

import (
	"fmt"
	"log"
	"sort"

	mppm "repro"
)

func main() {
	sys, err := mppm.NewSystemScaled(mppm.DefaultLLC(), 2_000_000, 40_000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("profiling the suite (one-time cost)...")
	set, err := sys.ProfileAll(mppm.Benchmarks())
	if err != nil {
		log.Fatal(err)
	}

	const searchSpace = 3000
	mixes, err := mppm.RandomMixes(searchSpace, 4, 7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("searching %d four-program mixes with MPPM...\n\n", searchSpace)

	worst, err := sys.StressSearch(set, mixes, 10)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("ten worst workloads by predicted STP:")
	for i, w := range worst {
		fmt.Printf("  %2d. STP %6.3f  worst: %-10s %.2fx  %v\n",
			i+1, w.STP, w.WorstProgram, w.WorstSlowdown, w.Mix)
	}

	// Aggregate per-benchmark worst-case slowdowns over the search, the
	// paper's "gamess gets slowed down by 2.2x" analysis.
	maxSlow := map[string]float64{}
	preds, _, err := sys.PredictMany(set, mixes[:600], mppm.ModelOptions{})
	if err != nil {
		log.Fatal(err)
	}
	for _, p := range preds {
		for i, name := range p.Benchmarks {
			if p.Slowdown[i] > maxSlow[name] {
				maxSlow[name] = p.Slowdown[i]
			}
		}
	}
	names := make([]string, 0, len(maxSlow))
	for n := range maxSlow {
		names = append(names, n)
	}
	sort.Slice(names, func(a, b int) bool { return maxSlow[names[a]] > maxSlow[names[b]] })
	fmt.Println("\nmost cache-sharing-sensitive benchmarks (max predicted slowdown):")
	for i, n := range names {
		if i == 6 {
			break
		}
		fmt.Printf("  %-12s %.2fx\n", n, maxSlow[n])
	}
	fmt.Println("\nuse these stress workloads to drive the design process further (Section 6).")
}
