// Stress: the Section 6 use case. Search thousands of workload mixes
// with MPPM — far more than detailed simulation could cover — and report
// the ones that stress the machine hardest (lowest predicted STP), plus
// the benchmarks most sensitive to cache sharing.
//
// The worst-K search is one request (WithTopK); the sensitivity scan
// consumes a second, larger request incrementally through EvalStream.
//
// Run with: go run ./examples/stress
package main

import (
	"context"
	"fmt"
	"log"
	"sort"

	mppm "repro"
)

func main() {
	ctx := context.Background()
	sys := mppm.NewSystem(mppm.DefaultLLC(), mppm.WithScale(2_000_000, 40_000))

	const searchSpace = 3000
	mixes, err := mppm.RandomMixes(searchSpace, 4, 7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("searching %d four-program mixes with MPPM...\n\n", searchSpace)

	// One request: evaluate every mix, keep the ten worst by STP.
	res, err := sys.Eval(ctx, mppm.NewRequest(mppm.KindPredict, mixes, mppm.WithTopK(10)))
	if err != nil {
		log.Fatal(err)
	}
	if err := res.Err(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("ten worst workloads by predicted STP:")
	for i := range res.Scenarios {
		sc := &res.Scenarios[i]
		prog, slow := sc.Prediction.MaxSlowdown()
		fmt.Printf("  %2d. STP %6.3f  worst: %-10s %.2fx  %v\n",
			i+1, sc.STP(), prog, slow, sc.Mix)
	}

	// Aggregate per-benchmark worst-case slowdowns over a slice of the
	// search, the paper's "gamess gets slowed down by 2.2x" analysis —
	// streamed, so the aggregation runs while scenarios still compute.
	maxSlow := map[string]float64{}
	for sc, err := range sys.EvalStream(ctx, mppm.NewRequest(mppm.KindPredict, mixes[:600])) {
		if err != nil {
			log.Fatal(err)
		}
		for i, name := range sc.Prediction.Benchmarks {
			if sc.Prediction.Slowdown[i] > maxSlow[name] {
				maxSlow[name] = sc.Prediction.Slowdown[i]
			}
		}
	}
	names := make([]string, 0, len(maxSlow))
	for n := range maxSlow {
		names = append(names, n)
	}
	sort.Slice(names, func(a, b int) bool { return maxSlow[names[a]] > maxSlow[names[b]] })
	fmt.Println("\nmost cache-sharing-sensitive benchmarks (max predicted slowdown):")
	for i, n := range names {
		if i == 6 {
			break
		}
		fmt.Printf("  %-12s %.2fx\n", n, maxSlow[n])
	}
	fmt.Println("\nuse these stress workloads to drive the design process further (Section 6).")
}
