// Variability: the Figure 3 use case. How much confidence does a study
// get from N randomly chosen workload mixes? MPPM evaluates thousands of
// mixes cheaply, so the 95% confidence interval on mean STP/ANTT can be
// driven arbitrarily tight — something detailed simulation cannot afford.
//
// All 2000 evaluations are one Eval request; the per-N confidence
// intervals are then computed over prefixes of the result.
//
// Run with: go run ./examples/variability
package main

import (
	"context"
	"fmt"
	"log"

	mppm "repro"
)

func main() {
	sys := mppm.NewSystem(mppm.DefaultLLC(), mppm.WithScale(2_000_000, 40_000))

	const total = 2000
	mixes, err := mppm.RandomMixes(total, 4, 11)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("evaluating %d mixes in one request...\n", total)
	res, err := sys.Eval(context.Background(), mppm.NewRequest(mppm.KindPredict, mixes))
	if err != nil {
		log.Fatal(err)
	}
	preds, err := res.Predictions()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\n%8s %10s %12s %10s %12s\n", "mixes", "mean STP", "STP 95% CI", "mean ANTT", "ANTT 95% CI")
	for _, n := range []int{10, 20, 50, 150, 500, total} {
		rep, err := mppm.Confidence(preds[:n])
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%8d %10.3f ±%6.3f (%4.1f%%) %8.3f ±%6.3f (%4.1f%%)\n",
			n,
			rep.STP.Mean, rep.STP.HalfWidth, rep.STP.RelativeHalfWidth()*100,
			rep.ANTT.Mean, rep.ANTT.HalfWidth, rep.ANTT.RelativeHalfWidth()*100)
	}
	fmt.Println("\ntens of mixes leave percent-scale uncertainty — too coarse to compare")
	fmt.Println("design points that differ by a few percent (the paper's Figure 3 point).")
	fmt.Println("MPPM gets to thousands of mixes in seconds and shrinks the interval.")
}
