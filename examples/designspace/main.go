// Designspace: the Section 5 use case. Rank the six Table 2 last-level
// cache configurations with MPPM over many workload mixes, and contrast
// with what a handful of randomly chosen mixes would conclude — the
// "current practice" the paper debunks.
//
// The whole 6-config x 400-mix grid is one Eval request with
// WithConfigs: the evaluation engine fans the 2400 scenarios over a
// bounded worker pool and computes each (benchmark, LLC) single-core
// profile exactly once behind a singleflight cache.
//
// Run with: go run ./examples/designspace
package main

import (
	"context"
	"fmt"
	"log"
	"sort"

	mppm "repro"
)

const (
	traceLen  = 2_000_000
	interval  = 40_000
	manyMixes = 400 // MPPM can afford many mixes: evaluations are ~ms each
	fewMixes  = 8   // what a simulation-budget-limited study would use
)

func main() {
	mixes, err := mppm.RandomMixes(manyMixes, 4, 42)
	if err != nil {
		log.Fatal(err)
	}

	sys := mppm.NewSystem(mppm.DefaultLLC(), mppm.WithScale(traceLen, interval))
	res, err := sys.Eval(context.Background(),
		mppm.NewRequest(mppm.KindPredict, mixes, mppm.WithConfigs(mppm.LLCConfigs()...)))
	if err != nil {
		log.Fatal(err)
	}
	if err := res.Err(); err != nil {
		log.Fatal(err)
	}

	type row struct {
		name            string
		manySTP, fewSTP float64
	}
	rows := make([]row, len(res.Configs))
	for c, llc := range res.Configs {
		fewSum := 0.0
		for m := 0; m < fewMixes; m++ {
			fewSum += res.At(c, m).STP()
		}
		rows[c] = row{llc.Name, res.MeanSTP(c), fewSum / fewMixes}
		fmt.Printf("evaluated %s: avg STP %.4f over %d mixes\n",
			llc.Name, rows[c].manySTP, manyMixes)
	}

	rank := func(key func(row) float64) []string {
		sorted := append([]row(nil), rows...)
		sort.Slice(sorted, func(a, b int) bool { return key(sorted[a]) > key(sorted[b]) })
		names := make([]string, len(sorted))
		for i, r := range sorted {
			names[i] = r.name
		}
		return names
	}

	manyRank := rank(func(r row) float64 { return r.manySTP })
	fewRank := rank(func(r row) float64 { return r.fewSTP })

	fmt.Printf("\nranking by avg STP over %d mixes (MPPM):   %v\n", manyMixes, manyRank)
	fmt.Printf("ranking by avg STP over %d mixes (practice): %v\n", fewMixes, fewRank)
	if manyRank[0] != fewRank[0] {
		fmt.Println("\nthe small study picks a different winner — the paper's Section 5 point:")
		fmt.Println("a handful of random mixes can lead to incorrect design decisions.")
	} else {
		fmt.Println("\nboth agree on the winner here, but the small study's ordering of the")
		fmt.Println("remaining configs is unstable across random seeds (see Figure 7).")
	}
}
