// Quickstart: profile a few benchmarks once, then predict multi-core
// performance for a workload mix with MPPM and check the prediction
// against the detailed reference simulator.
//
// This is the paper's Figure 1 pipeline end to end: single-core
// simulation profiling (one-time cost) -> analytical multi-program
// performance model -> estimated multi-program performance.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	mppm "repro"
)

func main() {
	// A reduced scale keeps the example fast; drop NewSystemScaled for
	// the paper-scale 10M-instruction traces.
	sys, err := mppm.NewSystemScaled(mppm.DefaultLLC(), 2_000_000, 40_000)
	if err != nil {
		log.Fatal(err)
	}

	// One-time cost: profile the suite in isolation. The profiles hold
	// per-interval CPI, memory CPI and LLC stack distance counters.
	fmt.Println("profiling the suite (one-time cost)...")
	set, err := sys.ProfileAll(mppm.Benchmarks())
	if err != nil {
		log.Fatal(err)
	}

	// The mix under study: the paper's worst-case four-program workload
	// (two copies of gamess with hmmer and soplex).
	mix := []string{"gamess", "gamess", "hmmer", "soplex"}

	// MPPM: analytical, sub-second.
	pred, err := sys.Predict(set, mix)
	if err != nil {
		log.Fatal(err)
	}

	// Reference: detailed multi-core simulation of the same mix.
	meas, err := sys.SimulateWithProfiles(set, mix)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nworkload: %v on %s\n\n", mix, sys.LLC().Name)
	fmt.Printf("%-10s %10s %12s %12s %12s\n",
		"program", "CPI(alone)", "CPI(meas)", "CPI(MPPM)", "slowdown")
	for i, name := range mix {
		fmt.Printf("%-10s %10.3f %12.3f %12.3f %9.2fx\n",
			name, pred.SingleCPI[i], meas.MultiCPI[i], pred.MultiCPI[i],
			meas.Slowdown[i])
	}
	fmt.Printf("\nSTP:  measured %.3f, MPPM %.3f (%+.1f%% error)\n",
		meas.STP, pred.STP, (pred.STP-meas.STP)/meas.STP*100)
	fmt.Printf("ANTT: measured %.3f, MPPM %.3f (%+.1f%% error)\n",
		meas.ANTT, pred.ANTT, (pred.ANTT-meas.ANTT)/meas.ANTT*100)
	fmt.Println("\nthe cache-sensitive gamess copies suffer most, as in the paper's Figure 6.")
}
