// Quickstart: predict multi-core performance for a workload mix with
// MPPM and check the prediction against the detailed reference
// simulator — one KindCompare request.
//
// This is the paper's Figure 1 pipeline end to end: single-core
// simulation profiling (one-time cost, handled transparently by the
// evaluation engine's profile cache) -> analytical multi-program
// performance model -> estimated multi-program performance.
//
// Run with: go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	mppm "repro"
)

func main() {
	// A reduced scale keeps the example fast; drop WithScale for the
	// paper-scale 10M-instruction traces.
	sys := mppm.NewSystem(mppm.DefaultLLC(), mppm.WithScale(2_000_000, 40_000))

	// The mix under study: the paper's worst-case four-program workload
	// (two copies of gamess with hmmer and soplex). A KindCompare request
	// evaluates the analytical model and the detailed simulator for every
	// scenario; the engine profiles each benchmark in isolation exactly
	// once (the paper's "one-time cost") on the way.
	mix := mppm.Mix{"gamess", "gamess", "hmmer", "soplex"}
	res, err := sys.Eval(context.Background(),
		mppm.NewRequest(mppm.KindCompare, []mppm.Mix{mix}))
	if err != nil {
		log.Fatal(err)
	}
	sc := &res.Scenarios[0]
	if sc.Err != nil {
		log.Fatal(sc.Err)
	}
	pred, meas := sc.Prediction, sc.Measurement

	fmt.Printf("workload: %v on %s\n\n", mix, sc.Config.Name)
	fmt.Printf("%-10s %10s %12s %12s %12s\n",
		"program", "CPI(alone)", "CPI(meas)", "CPI(MPPM)", "slowdown")
	for i, name := range mix {
		fmt.Printf("%-10s %10.3f %12.3f %12.3f %9.2fx\n",
			name, pred.SingleCPI[i], meas.MultiCPI[i], pred.MultiCPI[i],
			meas.Slowdown[i])
	}
	fmt.Printf("\nSTP:  measured %.3f, MPPM %.3f (%+.1f%% error)\n",
		meas.STP, pred.STP, sc.STPError()*100)
	fmt.Printf("ANTT: measured %.3f, MPPM %.3f (%+.1f%% error)\n",
		meas.ANTT, pred.ANTT, sc.ANTTError()*100)
	fmt.Println("\nthe cache-sensitive gamess copies suffer most, as in the paper's Figure 6.")
}
