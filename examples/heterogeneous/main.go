// Heterogeneous: one of the paper's future-work extensions ("modeling
// heterogeneous multi-core performance and exploring the heterogeneous
// multi-core design space"). MPPM's per-slot frequency scaling models big
// and little cores sharing one LLC; the detailed simulator supports the
// same knob, so the extension's predictions can be validated too.
//
// The experiment: place the cache-sensitive gamess on a big (2x) or
// little (1x) core alongside streaming co-runners and see how frequency
// and cache contention interact. Each core assignment is one request
// with its own solver options; the engine's profile cache makes the
// repeated evaluations nearly free.
//
// Run with: go run ./examples/heterogeneous
package main

import (
	"context"
	"fmt"
	"log"

	mppm "repro"
)

func main() {
	ctx := context.Background()
	sys := mppm.NewSystem(mppm.DefaultLLC(), mppm.WithScale(2_000_000, 40_000))

	mix := mppm.Mix{"gamess", "lbm", "milc", "povray"}
	configs := []struct {
		name  string
		scale []float64
	}{
		{"homogeneous (all 1x)", []float64{1, 1, 1, 1}},
		{"big gamess (2x)", []float64{2, 1, 1, 1}},
		{"big lbm (2x)", []float64{1, 2, 1, 1}},
		{"big povray (2x)", []float64{1, 1, 1, 2}},
	}

	fmt.Printf("mix: %v\n", mix)
	fmt.Printf("%-22s %10s %10s %28s\n", "core assignment", "STP", "ANTT", "per-program slowdown")
	for _, c := range configs {
		res, err := sys.Eval(ctx, mppm.NewRequest(mppm.KindPredict, []mppm.Mix{mix},
			mppm.WithOptions(mppm.ModelOptions{FrequencyScale: c.scale})))
		if err != nil {
			log.Fatal(err)
		}
		sc := &res.Scenarios[0]
		if sc.Err != nil {
			log.Fatal(sc.Err)
		}
		fmt.Printf("%-22s %10.3f %10.3f    ", c.name, sc.Prediction.STP, sc.Prediction.ANTT)
		for i := range mix {
			fmt.Printf("%5.2fx ", sc.Prediction.Slowdown[i])
		}
		fmt.Println()
	}
	fmt.Println("\nSpeeding up the cache-sensitive program changes how hard it presses the")
	fmt.Println("shared LLC; MPPM exposes that interaction without any multi-core simulation.")
}
