// Benchmark harness: one testing.B benchmark per paper table/figure plus
// ablation benches for the design choices DESIGN.md calls out. Each
// bench regenerates its artifact at a reduced scale per iteration and
// reports the headline quantity via b.ReportMetric, so
//
//	go test -bench=. -benchmem
//
// doubles as a compact reproduction report. cmd/experiments runs the
// same experiments at full paper scale.
package mppm

import (
	"context"
	"fmt"
	"os"
	"runtime"
	"sync"
	"testing"

	"repro/internal/cache"
	"repro/internal/contention"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/experiments"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/store"
	"repro/internal/trace"
)

// benchLab is shared across benchmarks: profiling and the detailed-
// simulation pool are the paper's one-time cost, not part of any figure's
// per-iteration work.
var (
	benchOnce sync.Once
	benchLab  *experiments.Lab
	benchErr  error
)

func getBenchLab(b *testing.B) *experiments.Lab {
	b.Helper()
	benchOnce.Do(func() {
		p := experiments.QuickScale()
		p.TraceLength = 1_000_000
		p.IntervalLength = 20_000
		p.MixCount = 16
		p.RankMixes = 60
		p.PracticeSets = 5
		p.PracticeMixes = 6
		p.SixteenCoreMixes = 2
		benchLab, benchErr = experiments.NewLab(p)
		if benchErr != nil {
			return
		}
		// Pre-warm the caches shared by every figure: profiles and the
		// 4-core pool's detailed simulations on config #1.
		if _, benchErr = benchLab.Accuracy(4); benchErr != nil {
			return
		}
	})
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return benchLab
}

// evalScenario evaluates one mix through the Request API, failing the
// bench on any error — the Eval-based replacement for the deprecated
// single-mix facade wrappers in these benchmarks.
func evalScenario(b *testing.B, sys *System, kind Kind, mix Mix, opts ...Option) *Scenario {
	res, err := sys.Eval(context.Background(), NewRequest(kind, []Mix{mix}, opts...))
	if err != nil {
		b.Fatal(err)
	}
	sc := &res.Scenarios[0]
	if sc.Err != nil {
		b.Fatal(sc.Err)
	}
	return sc
}

func BenchmarkTable1Baseline(b *testing.B) {
	// Table 1 is configuration data; the bench exercises its validation
	// and construction path.
	for i := 0; i < b.N; i++ {
		sys := NewSystem(DefaultLLC())
		if sys.LLC().Name != "config#1" {
			b.Fatal("wrong default config")
		}
	}
}

func BenchmarkTable2Configs(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfgs := LLCConfigs()
		if len(cfgs) != 6 {
			b.Fatal("want 6 configs")
		}
		for _, c := range cfgs {
			if err := c.Validate(); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkFigure3Variability(b *testing.B) {
	lab := getBenchLab(b)
	b.ResetTimer()
	var rel10 float64
	for i := 0; i < b.N; i++ {
		res, err := lab.Variability([]int{4, 8, 16}, 8)
		if err != nil {
			b.Fatal(err)
		}
		rel10 = res.Points[1].RelSTP()
	}
	b.ReportMetric(rel10*100, "STP-CI%@8mixes")
}

func BenchmarkFigure4Accuracy(b *testing.B) {
	lab := getBenchLab(b)
	b.ResetTimer()
	var stpErr float64
	for i := 0; i < b.N; i++ {
		res, err := lab.Accuracy(4)
		if err != nil {
			b.Fatal(err)
		}
		stpErr = res.AvgSTPError
	}
	b.ReportMetric(stpErr*100, "avgSTPerr%")
}

func BenchmarkFigure4Accuracy16Core(b *testing.B) {
	lab := getBenchLab(b)
	b.ResetTimer()
	var stpErr float64
	for i := 0; i < b.N; i++ {
		res, err := lab.SixteenCoreAccuracy()
		if err != nil {
			b.Fatal(err)
		}
		stpErr = res.AvgSTPError
	}
	b.ReportMetric(stpErr*100, "avgSTPerr%")
}

func BenchmarkFigure5Slowdown(b *testing.B) {
	lab := getBenchLab(b)
	b.ResetTimer()
	var slowErr float64
	for i := 0; i < b.N; i++ {
		res, err := lab.Accuracy(4)
		if err != nil {
			b.Fatal(err)
		}
		slowErr = res.AvgSlowdownError
	}
	b.ReportMetric(slowErr*100, "avgSlowErr%")
}

func BenchmarkFigure6WorstMix(b *testing.B) {
	lab := getBenchLab(b)
	b.ResetTimer()
	var worstSTP float64
	for i := 0; i < b.N; i++ {
		res, err := lab.Figure6()
		if err != nil {
			b.Fatal(err)
		}
		worstSTP = res.WorstOfPool.MeasuredSTP
	}
	b.ReportMetric(worstSTP, "worstSTP")
}

// BenchmarkSpeedDetailedSim and BenchmarkSpeedMPPM together regenerate
// the Section 4.3 comparison: ns/op of the two benches is the speedup.
func BenchmarkSpeedDetailedSim(b *testing.B) {
	lab := getBenchLab(b)
	pool, err := lab.Pool(4)
	if err != nil {
		b.Fatal(err)
	}
	sys, err := NewSystemScaled(DefaultLLC(), lab.Params().TraceLength, lab.Params().IntervalLength)
	if err != nil {
		b.Fatal(err)
	}
	set, err := sys.ProfileAll(Benchmarks())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		evalScenario(b, sys, KindSimulate, Mix(pool[i%len(pool)]), WithProfiles(set))
	}
}

func BenchmarkSpeedMPPM(b *testing.B) {
	lab := getBenchLab(b)
	pool, err := lab.Pool(4)
	if err != nil {
		b.Fatal(err)
	}
	sys, err := NewSystemScaled(DefaultLLC(), lab.Params().TraceLength, lab.Params().IntervalLength)
	if err != nil {
		b.Fatal(err)
	}
	set, err := sys.ProfileAll(Benchmarks())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		evalScenario(b, sys, KindPredict, Mix(pool[i%len(pool)]), WithProfiles(set))
	}
}

func BenchmarkFigure7RankCorrelation(b *testing.B) {
	lab := getBenchLab(b)
	b.ResetTimer()
	var mppmSpearman float64
	for i := 0; i < b.N; i++ {
		res, err := lab.Ranking(false)
		if err != nil {
			b.Fatal(err)
		}
		mppmSpearman = res.MPPMSpearmanSTP
	}
	b.ReportMetric(mppmSpearman, "MPPM-Spearman")
}

func BenchmarkFigure7RankCorrelationCategorized(b *testing.B) {
	lab := getBenchLab(b)
	b.ResetTimer()
	var avg float64
	for i := 0; i < b.N; i++ {
		res, err := lab.Ranking(true)
		if err != nil {
			b.Fatal(err)
		}
		avg, _ = res.AvgPracticeSpearman()
	}
	b.ReportMetric(avg, "practice-Spearman")
}

func BenchmarkFigure8PairwiseDecisions(b *testing.B) {
	lab := getBenchLab(b)
	b.ResetTimer()
	var rightFrac float64
	for i := 0; i < b.N; i++ {
		res, err := lab.Pairwise()
		if err != nil {
			b.Fatal(err)
		}
		rightFrac = 0
		for _, o := range res.Outcomes {
			rightFrac += o.AgreeBothRight + o.DisagreeMPPMRight
		}
		rightFrac /= float64(len(res.Outcomes))
	}
	b.ReportMetric(rightFrac*100, "MPPM-right%")
}

func BenchmarkFigure9StressWorkloads(b *testing.B) {
	lab := getBenchLab(b)
	b.ResetTimer()
	var overlap float64
	for i := 0; i < b.N; i++ {
		res, err := lab.Stress(5)
		if err != nil {
			b.Fatal(err)
		}
		overlap = float64(res.WorstKOverlap) / float64(res.WorstK)
	}
	b.ReportMetric(overlap*100, "worstK-overlap%")
}

// --- Ablation benches (DESIGN.md Section 5) --------------------------

func ablationSetup(b *testing.B) (*System, *ProfileSet, []Mix) {
	b.Helper()
	lab := getBenchLab(b)
	sys, err := NewSystemScaled(DefaultLLC(), lab.Params().TraceLength, lab.Params().IntervalLength)
	if err != nil {
		b.Fatal(err)
	}
	set, err := sys.ProfileAll(Benchmarks())
	if err != nil {
		b.Fatal(err)
	}
	mixes, err := RandomMixes(8, 4, 5)
	if err != nil {
		b.Fatal(err)
	}
	return sys, set, mixes
}

func BenchmarkAblationContentionModels(b *testing.B) {
	sys, set, mixes := ablationSetup(b)
	for _, m := range contention.Models() {
		b.Run(m.Name(), func(b *testing.B) {
			var stp float64
			for i := 0; i < b.N; i++ {
				sc := evalScenario(b, sys, KindPredict, mixes[i%len(mixes)],
					WithProfiles(set), WithOptions(ModelOptions{Contention: m}))
				stp = sc.Prediction.STP
			}
			b.ReportMetric(stp, "STP")
		})
	}
}

func BenchmarkAblationSmoothing(b *testing.B) {
	sys, set, mixes := ablationSetup(b)
	for _, f := range []float64{0.1, 0.5, 0.9} {
		name := "f=low"
		switch f {
		case 0.5:
			name = "f=default"
		case 0.9:
			name = "f=high"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				evalScenario(b, sys, KindPredict, mixes[i%len(mixes)],
					WithProfiles(set), WithOptions(ModelOptions{Smoothing: f}))
			}
		})
	}
}

func BenchmarkAblationChunkLength(b *testing.B) {
	sys, set, mixes := ablationSetup(b)
	tl := sys.TraceLength()
	for _, div := range []int64{2, 5, 20} {
		name := map[int64]string{2: "L=trace/2", 5: "L=trace/5", 20: "L=trace/20"}[div]
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				evalScenario(b, sys, KindPredict, mixes[i%len(mixes)],
					WithProfiles(set), WithOptions(ModelOptions{ChunkL: tl / div}))
			}
		})
	}
}

func BenchmarkAblationPaperDenominator(b *testing.B) {
	sys, set, mixes := ablationSetup(b)
	for _, paper := range []bool{false, true} {
		name := "isolated-time"
		if paper {
			name = "literal-figure2"
		}
		b.Run(name, func(b *testing.B) {
			var antt float64
			for i := 0; i < b.N; i++ {
				sc := evalScenario(b, sys, KindPredict, mixes[i%len(mixes)],
					WithProfiles(set), WithOptions(ModelOptions{PaperDenominator: paper}))
				antt = sc.Prediction.ANTT
			}
			b.ReportMetric(antt, "ANTT")
		})
	}
}

func BenchmarkAblationDerivedProfiles(b *testing.B) {
	// Derive an 8-way profile from a 16-way one (config#2 -> config#1
	// geometry) and run the model on it, versus directly profiled 8-way.
	lab := getBenchLab(b)
	cfg2, err := LLCConfigByName("config#2")
	if err != nil {
		b.Fatal(err)
	}
	sys16, err := NewSystemScaled(cfg2, lab.Params().TraceLength, lab.Params().IntervalLength)
	if err != nil {
		b.Fatal(err)
	}
	set16, err := sys16.ProfileAll(Benchmarks())
	if err != nil {
		b.Fatal(err)
	}
	mixes, err := RandomMixes(4, 4, 5)
	if err != nil {
		b.Fatal(err)
	}
	// Build the derived 8-way set once.
	derived := make([]*Profile, 0, len(set16.Profiles))
	for _, name := range set16.Names() {
		p, err := set16.Get(name)
		if err != nil {
			b.Fatal(err)
		}
		d, err := p.DeriveAssociativity(8, DefaultLLC().LatencyCycles)
		if err != nil {
			b.Fatal(err)
		}
		derived = append(derived, d)
	}
	derivedSet := NewProfileSet(derived...)
	b.ResetTimer()
	var stp float64
	for i := 0; i < b.N; i++ {
		pred, err := core.Predict(derivedSet, mixes[i%len(mixes)], core.Options{})
		if err != nil {
			b.Fatal(err)
		}
		stp = pred.STP
	}
	b.ReportMetric(stp, "STP-derived")
}

// BenchmarkProfileColdStart measures the design-space cold start: the
// whole synthetic suite profiled under four Table 2 LLC configurations
// — what a sweep, the Lab or a freshly started mppmd pays before the
// first prediction. "direct" is the pre-pipeline path (a full trace
// pass per (benchmark, config) pair); "replay" is the record-once /
// replay-per-config pipeline behind Engine.ProfileConfigs, which pays
// one frontend pass per benchmark plus a cheap LLC replay per config.
func BenchmarkProfileColdStart(b *testing.B) {
	specs := trace.Suite()
	llcs := cache.LLCConfigs()[:4]
	const (
		traceLen = 1_000_000
		interval = 20_000
	)
	pairs := float64(len(specs) * len(llcs))

	b.Run("direct", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, llc := range llcs {
				cfg := sim.DefaultConfig(llc)
				cfg.TraceLength = traceLen
				cfg.IntervalLength = interval
				if _, err := sim.ProfileSuite(context.Background(), specs, cfg); err != nil {
					b.Fatal(err)
				}
			}
		}
		b.ReportMetric(pairs*float64(b.N)/b.Elapsed().Seconds(), "profiles/s")
	})
	b.Run("replay", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			// A fresh engine per iteration: the cold start is the point.
			eng := engine.New(engine.Config{TraceLength: traceLen, IntervalLength: interval})
			if _, err := eng.ProfileConfigs(context.Background(), specs, llcs); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(pairs*float64(b.N)/b.Elapsed().Seconds(), "profiles/s")
	})
}

// BenchmarkStoreColdStart measures the replica cold start the
// persistent artifact store buys: the whole synthetic suite profiled
// under four Table 2 LLC configurations by a fresh engine, as
// BenchmarkProfileColdStart does — except every iteration's engine
// shares a pre-populated artifact store, so the warmup is served as
// profile loads instead of frontend recordings and replays. Compare the
// "warm-store" case against BenchmarkProfileColdStart/replay (the same
// work recomputed): the acceptance target is >= 10x. Set
// MPPM_BENCH_STORE to persist the store between runs (the CI bench job
// does, keyed on the codec format version); by default it lives in a
// per-run temp dir and only the populate pass pays the compute.
func BenchmarkStoreColdStart(b *testing.B) {
	specs := trace.Suite()
	llcs := cache.LLCConfigs()[:4]
	const (
		traceLen = 1_000_000
		interval = 20_000
	)
	pairs := float64(len(specs) * len(llcs))
	dir := os.Getenv("MPPM_BENCH_STORE")
	if dir == "" {
		dir = b.TempDir()
	}

	// Populate (or re-validate) the store once, outside any timing.
	seed := engine.New(engine.Config{
		TraceLength: traceLen, IntervalLength: interval, Store: store.Open(dir),
	})
	if _, err := seed.ProfileConfigs(context.Background(), specs, llcs); err != nil {
		b.Fatal(err)
	}

	b.Run("warm-store", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			// A fresh engine and store handle per iteration: the replica
			// cold start is the point.
			eng := engine.New(engine.Config{
				TraceLength: traceLen, IntervalLength: interval, Store: store.Open(dir),
			})
			if _, err := eng.ProfileConfigs(context.Background(), specs, llcs); err != nil {
				b.Fatal(err)
			}
			if got := eng.RecordingComputations(); got != 0 {
				b.Fatalf("cold start recomputed %d frontend recordings", got)
			}
		}
		b.ReportMetric(pairs*float64(b.N)/b.Elapsed().Seconds(), "profiles/s")
	})
}

// BenchmarkSweep measures evaluation-engine throughput (model
// predictions per second) at 1, 4 and GOMAXPROCS workers — the perf
// anchor for the engine behind System.Sweep and the mppmd service.
// Single-core profiles are pre-warmed so the numbers isolate the
// model-evaluation hot path the paper's Section 4.3 speed claim is
// about.
func BenchmarkSweep(b *testing.B) {
	mixes, err := RandomMixes(64, 4, 13)
	if err != nil {
		b.Fatal(err)
	}
	llcs := cache.LLCConfigs()[:1]
	jobs := engine.SweepJobs(mixes, llcs, engine.Predict, core.Options{})

	counts := []int{1, 4, runtime.GOMAXPROCS(0)}
	seen := map[int]bool{}
	for _, workers := range counts {
		if seen[workers] {
			continue
		}
		seen[workers] = true
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			eng := engine.New(engine.Config{
				TraceLength:    1_000_000,
				IntervalLength: 20_000,
				Workers:        workers,
			})
			// Pre-warm the profile cache: the sweep benchmark measures
			// evaluation throughput, not the one-time profiling cost.
			if _, err := eng.ProfileSet(context.Background(), llcs[0]); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				results, err := eng.Run(context.Background(), jobs)
				if err != nil {
					b.Fatal(err)
				}
				for j := range results {
					if results[j].Err != nil {
						b.Fatal(results[j].Err)
					}
				}
			}
			b.StopTimer()
			preds := float64(len(jobs)) * float64(b.N)
			b.ReportMetric(preds/b.Elapsed().Seconds(), "predictions/s")
		})
	}
}

// BenchmarkTracedSweep measures the same evaluation sweep with
// distributed tracing off (the default: every span site is one atomic
// load) and fully sampled (rate 1, every job recording queue/run/store
// spans into the flight recorder). The "off" case rides in the
// benchdiff gate: tracing must stay free when it is not in use.
func BenchmarkTracedSweep(b *testing.B) {
	mixes, err := RandomMixes(64, 4, 13)
	if err != nil {
		b.Fatal(err)
	}
	llcs := cache.LLCConfigs()[:1]
	jobs := engine.SweepJobs(mixes, llcs, engine.Predict, core.Options{})

	run := func(b *testing.B, rate float64) {
		eng := engine.New(engine.Config{
			TraceLength:    1_000_000,
			IntervalLength: 20_000,
			Workers:        runtime.GOMAXPROCS(0),
		})
		if _, err := eng.ProfileSet(context.Background(), llcs[0]); err != nil {
			b.Fatal(err)
		}
		obs.SetTraceSampleRate(rate)
		defer func() {
			obs.SetTraceSampleRate(0)
			obs.ResetTraces()
		}()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			// Mint the root the way HTTP ingress would, so the engine's
			// child span sites see a sampled context when tracing is on.
			ctx, sp := obs.StartSpan(context.Background(), obs.Service, "bench.sweep")
			results, err := eng.Run(ctx, jobs)
			sp.End()
			if err != nil {
				b.Fatal(err)
			}
			for j := range results {
				if results[j].Err != nil {
					b.Fatal(results[j].Err)
				}
			}
		}
		b.StopTimer()
		preds := float64(len(jobs)) * float64(b.N)
		b.ReportMetric(preds/b.Elapsed().Seconds(), "predictions/s")
	}

	b.Run("off", func(b *testing.B) { run(b, 0) })
	b.Run("on", func(b *testing.B) { run(b, 1) })
}
