package mppm

// The pre-Request facade methods (Predict, Simulate, Sweep, ...) are
// deprecated thin wrappers over Eval, kept for compatibility. This file
// is their only remaining in-repo caller: everything else — tests,
// benchmarks, examples, commands — goes through the Request API, so the
// CI staticcheck job's deprecation check (SA1019) stays meaningful for
// new code. (staticcheck does not flag same-package use, which is
// exactly the carve-out a wrapper-compat test needs.)

import (
	"context"
	"math"
	"testing"
)

// TestDeprecatedWrappersMatchEval drives every deprecated wrapper once
// and checks it returns exactly what the equivalent Request yields —
// the wrappers must stay shims, not forks.
func TestDeprecatedWrappersMatchEval(t *testing.T) {
	sys, set := quickSystem(t)
	mix := Mix{"gamess", "lbm", "milc", "mcf"}
	ctx := context.Background()

	evalOne := func(kind Kind, opts ...Option) *Scenario {
		t.Helper()
		res, err := sys.Eval(ctx, NewRequest(kind, []Mix{mix}, opts...))
		if err != nil {
			t.Fatal(err)
		}
		sc := &res.Scenarios[0]
		if sc.Err != nil {
			t.Fatal(sc.Err)
		}
		return sc
	}

	want := evalOne(KindPredict, WithProfiles(set))
	if p, err := sys.Predict(set, mix); err != nil || p.STP != want.Prediction.STP {
		t.Fatalf("Predict: %v, %v (want STP %v)", p, err, want.Prediction.STP)
	}
	opts := ModelOptions{PaperDenominator: true}
	wantOpts := evalOne(KindPredict, WithProfiles(set), WithOptions(opts))
	if p, err := sys.PredictWithOptions(set, mix, opts); err != nil || p.STP != wantOpts.Prediction.STP {
		t.Fatalf("PredictWithOptions: %v, %v", p, err)
	}

	wantSim := evalOne(KindSimulate, WithProfiles(set))
	if m, err := sys.SimulateWithProfiles(set, mix); err != nil || m.STP != wantSim.Measurement.STP {
		t.Fatalf("SimulateWithProfiles: %v, %v", m, err)
	}
	if m, err := sys.Simulate(mix); err != nil || m.STP != wantSim.Measurement.STP {
		t.Fatalf("Simulate: %v, %v", m, err)
	}

	wantCmp := evalOne(KindCompare, WithProfiles(set))
	cmp, err := sys.CompareMix(set, mix)
	if err != nil || cmp.Prediction.STP != wantCmp.Prediction.STP ||
		cmp.Measurement.STP != wantCmp.Measurement.STP {
		t.Fatalf("CompareMix: %+v, %v", cmp, err)
	}
	if math.Abs(cmp.STPError()-wantCmp.STPError()) > 1e-15 {
		t.Fatalf("Compare.STPError %v != Scenario.STPError %v", cmp.STPError(), wantCmp.STPError())
	}

	mixes, err := RandomMixes(4, 4, 17)
	if err != nil {
		t.Fatal(err)
	}
	batchRes, err := sys.Eval(ctx, NewRequest(KindPredict, mixes, WithProfiles(set)))
	if err != nil {
		t.Fatal(err)
	}
	wantPreds, err := batchRes.Predictions()
	if err != nil {
		t.Fatal(err)
	}
	preds, rep, err := sys.PredictMany(set, mixes, ModelOptions{})
	if err != nil || len(preds) != len(wantPreds) {
		t.Fatalf("PredictMany: %d preds, %v", len(preds), err)
	}
	for i := range preds {
		if preds[i].STP != wantPreds[i].STP {
			t.Fatalf("PredictMany mix %d STP %v != Eval %v", i, preds[i].STP, wantPreds[i].STP)
		}
	}
	if rep.Mixes != len(mixes) {
		t.Fatalf("PredictMany report covers %d mixes", rep.Mixes)
	}
	batch, err := sys.PredictBatch(ctx, mixes)
	if err != nil {
		t.Fatal(err)
	}
	for i := range batch {
		// PredictBatch uses the engine profile cache rather than set; the
		// profiles are identical, so results must be too.
		if batch[i].STP != wantPreds[i].STP {
			t.Fatalf("PredictBatch mix %d STP %v != Eval %v", i, batch[i].STP, wantPreds[i].STP)
		}
	}

	configs := LLCConfigs()[:2]
	wantSweep, err := sys.Eval(ctx, NewRequest(KindPredict, mixes, WithConfigs(configs...)))
	if err != nil {
		t.Fatal(err)
	}
	sweep, err := sys.Sweep(ctx, mixes, configs)
	if err != nil {
		t.Fatal(err)
	}
	for c := range configs {
		for m := range mixes {
			if sweep.Predictions[c][m].STP != wantSweep.At(c, m).Prediction.STP {
				t.Fatalf("Sweep (%d,%d) STP diverges", c, m)
			}
		}
	}

	wantStress, err := sys.Eval(ctx, NewRequest(KindPredict, mixes, WithProfiles(set), WithTopK(2)))
	if err != nil {
		t.Fatal(err)
	}
	stress, err := sys.StressSearch(set, mixes, 2)
	if err != nil || len(stress) != 2 {
		t.Fatalf("StressSearch: %d mixes, %v", len(stress), err)
	}
	for i := range stress {
		if stress[i].STP != wantStress.Scenarios[i].STP() {
			t.Fatalf("StressSearch rank %d STP %v != Eval %v",
				i, stress[i].STP, wantStress.Scenarios[i].STP())
		}
	}
	if _, err := sys.StressSearch(set, mixes, 0); err == nil {
		t.Fatal("StressSearch k=0 should error")
	}
}
