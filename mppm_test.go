package mppm

import (
	"bytes"
	"context"
	"errors"
	"math"
	"sync"
	"testing"
)

// Shared quick-scale system/profiles for the facade tests.
var (
	facadeOnce sync.Once
	facadeSys  *System
	facadeSet  *ProfileSet
	facadeErr  error
)

func quickSystem(t *testing.T) (*System, *ProfileSet) {
	t.Helper()
	facadeOnce.Do(func() {
		facadeSys, facadeErr = NewSystemScaled(DefaultLLC(), 1_000_000, 50_000)
		if facadeErr != nil {
			return
		}
		facadeSet, facadeErr = facadeSys.ProfileAll(Benchmarks())
	})
	if facadeErr != nil {
		t.Fatal(facadeErr)
	}
	return facadeSys, facadeSet
}

func TestBenchmarksSuite(t *testing.T) {
	if len(Benchmarks()) != 29 {
		t.Fatalf("suite = %d benchmarks, want 29", len(Benchmarks()))
	}
	if len(BenchmarkNames()) != 29 {
		t.Fatal("names mismatch")
	}
	if _, err := BenchmarkByName("gamess"); err != nil {
		t.Fatal(err)
	}
	if _, err := BenchmarkByName("nope"); err == nil {
		t.Fatal("unknown benchmark should error")
	}
}

func TestLLCConfigAccessors(t *testing.T) {
	if len(LLCConfigs()) != 6 {
		t.Fatal("want 6 LLC configs")
	}
	if DefaultLLC().Name != "config#1" {
		t.Fatalf("default LLC = %s", DefaultLLC().Name)
	}
	c, err := LLCConfigByName("config#3")
	if err != nil || c.SizeBytes != 1<<20 {
		t.Fatalf("config#3 = %+v, %v", c, err)
	}
}

func TestContentionModelAccessors(t *testing.T) {
	if len(ContentionModels()) < 3 {
		t.Fatal("want at least 3 contention models")
	}
	m, err := ContentionModelByName("FOA")
	if err != nil || m.Name() != "FOA" {
		t.Fatalf("FOA lookup = %v, %v", m, err)
	}
}

func TestNewSystemScaledValidates(t *testing.T) {
	if _, err := NewSystemScaled(DefaultLLC(), 0, 0); err == nil {
		t.Fatal("invalid scale should error")
	}
}

func TestSystemAccessors(t *testing.T) {
	sys := NewSystem(DefaultLLC())
	if sys.LLC().Name != "config#1" {
		t.Fatal("LLC accessor wrong")
	}
	if sys.TraceLength() != 10_000_000 {
		t.Fatalf("default trace length = %d", sys.TraceLength())
	}
}

func TestPredictAndSimulateAgree(t *testing.T) {
	sys, set := quickSystem(t)
	mix := Mix{"gamess", "lbm", "soplex", "povray"}
	res, err := sys.Eval(context.Background(),
		NewRequest(KindCompare, []Mix{mix}, WithProfiles(set)))
	if err != nil {
		t.Fatal(err)
	}
	sc := &res.Scenarios[0]
	if sc.Err != nil {
		t.Fatal(sc.Err)
	}
	if math.Abs(sc.STPError()) > 0.15 {
		t.Errorf("STP error %.1f%%, want within 15%% at quick scale", sc.STPError()*100)
	}
	if math.Abs(sc.ANTTError()) > 0.15 {
		t.Errorf("ANTT error %.1f%%", sc.ANTTError()*100)
	}
	if sc.Measurement.STP <= 0 || sc.Measurement.STP > 4 {
		t.Fatalf("measured STP = %v", sc.Measurement.STP)
	}
	for i := range mix {
		if sc.Measurement.Slowdown[i] < 0.999 {
			t.Errorf("%s measured slowdown %v < 1", mix[i], sc.Measurement.Slowdown[i])
		}
	}
}

func TestSimulateWithoutProfiles(t *testing.T) {
	sys, _ := quickSystem(t)
	res, err := sys.Eval(context.Background(),
		NewRequest(KindSimulate, []Mix{{"povray", "namd"}}))
	if err != nil {
		t.Fatal(err)
	}
	sc := &res.Scenarios[0]
	if sc.Err != nil {
		t.Fatal(sc.Err)
	}
	if m := sc.Measurement; m.STP < 1.8 || m.STP > 2.0+1e-9 {
		t.Fatalf("compute pair STP = %v, want ~2", m.STP)
	}
}

func TestPredictManyConfidence(t *testing.T) {
	sys, set := quickSystem(t)
	mixes, err := RandomMixes(12, 4, 99)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Eval(context.Background(),
		NewRequest(KindPredict, mixes, WithProfiles(set)))
	if err != nil {
		t.Fatal(err)
	}
	preds, err := res.Predictions()
	if err != nil {
		t.Fatal(err)
	}
	rep, err := res.Confidence()
	if err != nil {
		t.Fatal(err)
	}
	if len(preds) != 12 || rep.Mixes != 12 {
		t.Fatalf("preds = %d, report mixes = %d", len(preds), rep.Mixes)
	}
	if rep.STP.HalfWidth <= 0 || rep.ANTT.HalfWidth <= 0 {
		t.Fatal("confidence interval missing")
	}
	if rep.STP.Lo() > rep.STP.Hi() {
		t.Fatal("inverted interval")
	}
	if _, err := sys.Eval(context.Background(),
		NewRequest(KindPredict, nil, WithProfiles(set))); err == nil {
		t.Fatal("empty mixes should error")
	}
}

func TestNumMixesMatchesPaper(t *testing.T) {
	n, err := NumMixes(29, 4)
	if err != nil || n != 35960 {
		t.Fatalf("NumMixes(29,4) = %d, %v", n, err)
	}
}

func TestRandomMixesDeterministic(t *testing.T) {
	a, err := RandomMixes(5, 4, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := RandomMixes(5, 4, 7)
	for i := range a {
		if a[i].Key() != b[i].Key() {
			t.Fatal("not deterministic")
		}
	}
}

func TestStressSearchFindsCacheSensitiveMixes(t *testing.T) {
	sys, set := quickSystem(t)
	mixes, err := RandomMixes(40, 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Eval(context.Background(),
		NewRequest(KindPredict, mixes, WithProfiles(set), WithTopK(5)))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Scenarios) != 5 {
		t.Fatalf("got %d stress scenarios", len(res.Scenarios))
	}
	for i := range res.Scenarios {
		if res.Scenarios[i].Err != nil {
			t.Fatal(res.Scenarios[i].Err)
		}
		if i > 0 && res.Scenarios[i].STP() < res.Scenarios[i-1].STP() {
			t.Fatal("stress scenarios not sorted worst-first")
		}
	}
	name, slow := res.Scenarios[0].Prediction.MaxSlowdown()
	if slow < 1 || name == "" {
		t.Fatalf("missing worst-program diagnostics: %s/%v", name, slow)
	}
	if _, err := sys.Eval(context.Background(),
		NewRequest(KindPredict, mixes, WithTopK(-1))); err == nil {
		t.Fatal("negative TopK should error")
	}
}

func TestPredictWithOptionsSwapsContention(t *testing.T) {
	sys, set := quickSystem(t)
	mixes := []Mix{{"gamess", "lbm", "milc", "libquantum"}}
	m, err := ContentionModelByName("equal-partition")
	if err != nil {
		t.Fatal(err)
	}
	a, err := sys.Eval(context.Background(), NewRequest(KindPredict, mixes,
		WithProfiles(set), WithOptions(ModelOptions{Contention: m})))
	if err != nil {
		t.Fatal(err)
	}
	b, err := sys.Eval(context.Background(), NewRequest(KindPredict, mixes,
		WithProfiles(set)))
	if err != nil {
		t.Fatal(err)
	}
	if a.Scenarios[0].STP() == b.Scenarios[0].STP() {
		t.Fatal("different contention models should give different STP on a contended mix")
	}
}

func TestClassifySplitsSuite(t *testing.T) {
	_, set := quickSystem(t)
	classes := Classify(set, DefaultMemIntensityThreshold)
	if len(classes) != 29 {
		t.Fatalf("classified %d benchmarks", len(classes))
	}
	var mem, comp int
	for _, c := range classes {
		if c == Memory {
			mem++
		} else {
			comp++
		}
	}
	if mem == 0 || comp == 0 {
		t.Fatalf("degenerate classification: %d MEM, %d COMP", mem, comp)
	}
	if classes["lbm"] != Memory {
		t.Error("lbm should be memory-intensive")
	}
	if classes["povray"] != Compute {
		t.Error("povray should be compute-intensive")
	}
}

func TestExportImportTraceRoundTrip(t *testing.T) {
	sys, _ := quickSystem(t)
	b, err := BenchmarkByName("hmmer")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ExportTrace(&buf, b, 100_000); err != nil {
		t.Fatal(err)
	}
	src, err := ImportTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if src.Name() != "hmmer" || src.Instructions() != 100_000 {
		t.Fatalf("imported trace: %s/%d", src.Name(), src.Instructions())
	}
	p, err := sys.ProfileSource(src)
	if err != nil {
		t.Fatal(err)
	}
	if p.CPI() <= 0 {
		t.Fatal("profile from imported trace empty")
	}
}

func TestSimulateSources(t *testing.T) {
	sys, _ := quickSystem(t)
	var srcs []TraceSource
	for _, n := range []string{"povray", "namd"} {
		b, _ := BenchmarkByName(n)
		var buf bytes.Buffer
		if err := ExportTrace(&buf, b, 200_000); err != nil {
			t.Fatal(err)
		}
		src, err := ImportTrace(&buf)
		if err != nil {
			t.Fatal(err)
		}
		srcs = append(srcs, src)
	}
	m, err := sys.SimulateSources(srcs)
	if err != nil {
		t.Fatal(err)
	}
	if m.STP < 1.8 || m.STP > 2.0+1e-9 {
		t.Fatalf("STP = %v, want ~2 for compute pair", m.STP)
	}
}

func TestPredictBatchMatchesPredict(t *testing.T) {
	sys, set := quickSystem(t)
	mixes, err := RandomMixes(6, 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Eval(context.Background(), NewRequest(KindPredict, mixes))
	if err != nil {
		t.Fatal(err)
	}
	batch, err := res.Predictions()
	if err != nil {
		t.Fatal(err)
	}
	if len(batch) != len(mixes) {
		t.Fatalf("%d results for %d mixes", len(batch), len(mixes))
	}
	for i, mix := range mixes {
		one, err := sys.Eval(context.Background(),
			NewRequest(KindPredict, []Mix{mix}, WithProfiles(set)))
		if err != nil {
			t.Fatal(err)
		}
		want := one.Scenarios[0].Prediction
		if batch[i].STP != want.STP || batch[i].ANTT != want.ANTT {
			t.Fatalf("mix %d: batch STP/ANTT %v/%v != sequential %v/%v",
				i, batch[i].STP, batch[i].ANTT, want.STP, want.ANTT)
		}
	}
}

func TestSweepFacade(t *testing.T) {
	sys, _ := quickSystem(t)
	mixes, err := RandomMixes(5, 2, 9)
	if err != nil {
		t.Fatal(err)
	}
	configs := LLCConfigs()[:2]
	res, err := sys.Eval(context.Background(),
		NewRequest(KindPredict, mixes, WithConfigs(configs...)))
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Err(); err != nil {
		t.Fatal(err)
	}
	if len(res.Scenarios) != len(configs)*len(mixes) {
		t.Fatalf("%d scenarios, want %d", len(res.Scenarios), len(configs)*len(mixes))
	}
	for c := range configs {
		if m := res.MeanSTP(c); m <= 0 || m > float64(len(mixes[0])) {
			t.Fatalf("config %d mean STP %v implausible", c, m)
		}
	}
	// A bigger LLC should not hurt throughput on average.
	if res.MeanSTP(1) < res.MeanSTP(0)-1e-9 {
		t.Logf("note: config#2 mean STP %v < config#1 %v", res.MeanSTP(1), res.MeanSTP(0))
	}
}

func TestSweepCancelled(t *testing.T) {
	sys, _ := quickSystem(t)
	mixes, err := RandomMixes(4, 2, 9)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := sys.Eval(ctx, NewRequest(KindPredict, mixes,
		WithConfigs(LLCConfigs()...))); !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
}

func TestWarmDeduplicatesConfigs(t *testing.T) {
	sys, err := NewSystemScaled(DefaultLLC(), 200_000, 10_000)
	if err != nil {
		t.Fatal(err)
	}
	cfg2, err := LLCConfigByName("config#2")
	if err != nil {
		t.Fatal(err)
	}
	n, err := sys.Warm(context.Background(), DefaultLLC(), cfg2, DefaultLLC())
	if err != nil {
		t.Fatal(err)
	}
	suite := len(Benchmarks())
	if n != suite*2 {
		t.Fatalf("Warm reported %d profiles for 2 distinct configs, want %d", n, suite*2)
	}
	stats := sys.EngineStats()
	if stats.RecordingComputations != int64(suite) {
		t.Fatalf("warm ran %d recordings for %d benchmarks", stats.RecordingComputations, suite)
	}
	if stats.ProfileComputations != int64(suite*2) {
		t.Fatalf("warm computed %d profiles, want %d", stats.ProfileComputations, suite*2)
	}
}
