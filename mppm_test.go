package mppm

import (
	"bytes"
	"context"
	"errors"
	"math"
	"sync"
	"testing"
)

// Shared quick-scale system/profiles for the facade tests.
var (
	facadeOnce sync.Once
	facadeSys  *System
	facadeSet  *ProfileSet
	facadeErr  error
)

func quickSystem(t *testing.T) (*System, *ProfileSet) {
	t.Helper()
	facadeOnce.Do(func() {
		facadeSys, facadeErr = NewSystemScaled(DefaultLLC(), 1_000_000, 50_000)
		if facadeErr != nil {
			return
		}
		facadeSet, facadeErr = facadeSys.ProfileAll(Benchmarks())
	})
	if facadeErr != nil {
		t.Fatal(facadeErr)
	}
	return facadeSys, facadeSet
}

func TestBenchmarksSuite(t *testing.T) {
	if len(Benchmarks()) != 29 {
		t.Fatalf("suite = %d benchmarks, want 29", len(Benchmarks()))
	}
	if len(BenchmarkNames()) != 29 {
		t.Fatal("names mismatch")
	}
	if _, err := BenchmarkByName("gamess"); err != nil {
		t.Fatal(err)
	}
	if _, err := BenchmarkByName("nope"); err == nil {
		t.Fatal("unknown benchmark should error")
	}
}

func TestLLCConfigAccessors(t *testing.T) {
	if len(LLCConfigs()) != 6 {
		t.Fatal("want 6 LLC configs")
	}
	if DefaultLLC().Name != "config#1" {
		t.Fatalf("default LLC = %s", DefaultLLC().Name)
	}
	c, err := LLCConfigByName("config#3")
	if err != nil || c.SizeBytes != 1<<20 {
		t.Fatalf("config#3 = %+v, %v", c, err)
	}
}

func TestContentionModelAccessors(t *testing.T) {
	if len(ContentionModels()) < 3 {
		t.Fatal("want at least 3 contention models")
	}
	m, err := ContentionModelByName("FOA")
	if err != nil || m.Name() != "FOA" {
		t.Fatalf("FOA lookup = %v, %v", m, err)
	}
}

func TestNewSystemScaledValidates(t *testing.T) {
	if _, err := NewSystemScaled(DefaultLLC(), 0, 0); err == nil {
		t.Fatal("invalid scale should error")
	}
}

func TestSystemAccessors(t *testing.T) {
	sys := NewSystem(DefaultLLC())
	if sys.LLC().Name != "config#1" {
		t.Fatal("LLC accessor wrong")
	}
	if sys.TraceLength() != 10_000_000 {
		t.Fatalf("default trace length = %d", sys.TraceLength())
	}
}

func TestPredictAndSimulateAgree(t *testing.T) {
	sys, set := quickSystem(t)
	mix := []string{"gamess", "lbm", "soplex", "povray"}
	cmp, err := sys.CompareMix(set, mix)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(cmp.STPError()) > 0.15 {
		t.Errorf("STP error %.1f%%, want within 15%% at quick scale", cmp.STPError()*100)
	}
	if math.Abs(cmp.ANTTError()) > 0.15 {
		t.Errorf("ANTT error %.1f%%", cmp.ANTTError()*100)
	}
	if cmp.Measurement.STP <= 0 || cmp.Measurement.STP > 4 {
		t.Fatalf("measured STP = %v", cmp.Measurement.STP)
	}
	for i := range mix {
		if cmp.Measurement.Slowdown[i] < 0.999 {
			t.Errorf("%s measured slowdown %v < 1", mix[i], cmp.Measurement.Slowdown[i])
		}
	}
}

func TestSimulateWithoutProfiles(t *testing.T) {
	sys, _ := quickSystem(t)
	m, err := sys.Simulate([]string{"povray", "namd"})
	if err != nil {
		t.Fatal(err)
	}
	if m.STP < 1.8 || m.STP > 2.0+1e-9 {
		t.Fatalf("compute pair STP = %v, want ~2", m.STP)
	}
}

func TestPredictManyConfidence(t *testing.T) {
	sys, set := quickSystem(t)
	mixes, err := RandomMixes(12, 4, 99)
	if err != nil {
		t.Fatal(err)
	}
	preds, rep, err := sys.PredictMany(set, mixes, ModelOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(preds) != 12 || rep.Mixes != 12 {
		t.Fatalf("preds = %d, report mixes = %d", len(preds), rep.Mixes)
	}
	if rep.STP.HalfWidth <= 0 || rep.ANTT.HalfWidth <= 0 {
		t.Fatal("confidence interval missing")
	}
	if rep.STP.Lo() > rep.STP.Hi() {
		t.Fatal("inverted interval")
	}
	if _, _, err := sys.PredictMany(set, nil, ModelOptions{}); err == nil {
		t.Fatal("empty mixes should error")
	}
}

func TestNumMixesMatchesPaper(t *testing.T) {
	n, err := NumMixes(29, 4)
	if err != nil || n != 35960 {
		t.Fatalf("NumMixes(29,4) = %d, %v", n, err)
	}
}

func TestRandomMixesDeterministic(t *testing.T) {
	a, err := RandomMixes(5, 4, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := RandomMixes(5, 4, 7)
	for i := range a {
		if a[i].Key() != b[i].Key() {
			t.Fatal("not deterministic")
		}
	}
}

func TestStressSearchFindsCacheSensitiveMixes(t *testing.T) {
	sys, set := quickSystem(t)
	mixes, err := RandomMixes(40, 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	worst, err := sys.StressSearch(set, mixes, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(worst) != 5 {
		t.Fatalf("got %d stress mixes", len(worst))
	}
	for i := 1; i < len(worst); i++ {
		if worst[i].STP < worst[i-1].STP {
			t.Fatal("stress mixes not sorted worst-first")
		}
	}
	if worst[0].WorstSlowdown < 1 || worst[0].WorstProgram == "" {
		t.Fatalf("missing worst-program diagnostics: %+v", worst[0])
	}
	if _, err := sys.StressSearch(set, mixes, 0); err == nil {
		t.Fatal("k=0 should error")
	}
}

func TestPredictWithOptionsSwapsContention(t *testing.T) {
	sys, set := quickSystem(t)
	mix := []string{"gamess", "lbm", "milc", "libquantum"}
	m, err := ContentionModelByName("equal-partition")
	if err != nil {
		t.Fatal(err)
	}
	a, err := sys.PredictWithOptions(set, mix, ModelOptions{Contention: m})
	if err != nil {
		t.Fatal(err)
	}
	b, err := sys.Predict(set, mix)
	if err != nil {
		t.Fatal(err)
	}
	if a.STP == b.STP {
		t.Fatal("different contention models should give different STP on a contended mix")
	}
}

func TestClassifySplitsSuite(t *testing.T) {
	_, set := quickSystem(t)
	classes := Classify(set, DefaultMemIntensityThreshold)
	if len(classes) != 29 {
		t.Fatalf("classified %d benchmarks", len(classes))
	}
	var mem, comp int
	for _, c := range classes {
		if c == Memory {
			mem++
		} else {
			comp++
		}
	}
	if mem == 0 || comp == 0 {
		t.Fatalf("degenerate classification: %d MEM, %d COMP", mem, comp)
	}
	if classes["lbm"] != Memory {
		t.Error("lbm should be memory-intensive")
	}
	if classes["povray"] != Compute {
		t.Error("povray should be compute-intensive")
	}
}

func TestExportImportTraceRoundTrip(t *testing.T) {
	sys, _ := quickSystem(t)
	b, err := BenchmarkByName("hmmer")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ExportTrace(&buf, b, 100_000); err != nil {
		t.Fatal(err)
	}
	src, err := ImportTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if src.Name() != "hmmer" || src.Instructions() != 100_000 {
		t.Fatalf("imported trace: %s/%d", src.Name(), src.Instructions())
	}
	p, err := sys.ProfileSource(src)
	if err != nil {
		t.Fatal(err)
	}
	if p.CPI() <= 0 {
		t.Fatal("profile from imported trace empty")
	}
}

func TestSimulateSources(t *testing.T) {
	sys, _ := quickSystem(t)
	var srcs []TraceSource
	for _, n := range []string{"povray", "namd"} {
		b, _ := BenchmarkByName(n)
		var buf bytes.Buffer
		if err := ExportTrace(&buf, b, 200_000); err != nil {
			t.Fatal(err)
		}
		src, err := ImportTrace(&buf)
		if err != nil {
			t.Fatal(err)
		}
		srcs = append(srcs, src)
	}
	m, err := sys.SimulateSources(srcs)
	if err != nil {
		t.Fatal(err)
	}
	if m.STP < 1.8 || m.STP > 2.0+1e-9 {
		t.Fatalf("STP = %v, want ~2 for compute pair", m.STP)
	}
}

func TestPredictBatchMatchesPredict(t *testing.T) {
	sys, set := quickSystem(t)
	mixes, err := RandomMixes(6, 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	batch, err := sys.PredictBatch(context.Background(), mixes)
	if err != nil {
		t.Fatal(err)
	}
	if len(batch) != len(mixes) {
		t.Fatalf("%d results for %d mixes", len(batch), len(mixes))
	}
	for i, mix := range mixes {
		want, err := sys.Predict(set, mix)
		if err != nil {
			t.Fatal(err)
		}
		if batch[i].STP != want.STP || batch[i].ANTT != want.ANTT {
			t.Fatalf("mix %d: batch STP/ANTT %v/%v != sequential %v/%v",
				i, batch[i].STP, batch[i].ANTT, want.STP, want.ANTT)
		}
	}
}

func TestSweepFacade(t *testing.T) {
	sys, _ := quickSystem(t)
	mixes, err := RandomMixes(5, 2, 9)
	if err != nil {
		t.Fatal(err)
	}
	configs := LLCConfigs()[:2]
	res, err := sys.Sweep(context.Background(), mixes, configs)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Predictions) != len(configs) {
		t.Fatalf("%d config rows, want %d", len(res.Predictions), len(configs))
	}
	for c := range configs {
		if len(res.Predictions[c]) != len(mixes) {
			t.Fatalf("config %d has %d results", c, len(res.Predictions[c]))
		}
		if m := res.MeanSTP(c); m <= 0 || m > float64(len(mixes[0])) {
			t.Fatalf("config %d mean STP %v implausible", c, m)
		}
	}
	// A bigger LLC should not hurt throughput on average.
	if res.MeanSTP(1) < res.MeanSTP(0)-1e-9 {
		t.Logf("note: config#2 mean STP %v < config#1 %v", res.MeanSTP(1), res.MeanSTP(0))
	}
}

func TestSweepCancelled(t *testing.T) {
	sys, _ := quickSystem(t)
	mixes, err := RandomMixes(4, 2, 9)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := sys.Sweep(ctx, mixes, nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
}
