SHELL := /bin/bash

# Benchmarks captured in the committed baseline: engine sweep
# throughput, the model kernel, and the profiling pipeline (cold start,
# direct pass, frontend recording, per-config replay).
BENCH_PATTERN := Sweep|Kernel|ProfileColdStart|ProfileDirect|ProfileFrontendRecord|ProfileReplay
BENCH_COUNT   := 1

.PHONY: test race bench-baseline

test:
	go build ./... && go test ./...

race:
	go test -race ./...

# bench-baseline regenerates BENCH_PR4.json at the repo root — the
# in-tree perf snapshot the CI bench job mirrors as per-run artifacts.
# Run it on an idle machine; the numbers land in the README table.
bench-baseline:
	set -o pipefail; \
	go test -run '^$$' -bench '$(BENCH_PATTERN)' -benchmem -count $(BENCH_COUNT) ./... | tee bench.txt
	{ \
	  echo "{"; \
	  echo "  \"commit\": \"$$(git rev-parse HEAD 2>/dev/null || echo unknown)$$(git diff --quiet HEAD 2>/dev/null || echo -dirty)\","; \
	  echo "  \"generated_by\": \"make bench-baseline\","; \
	  echo "  \"bench\": ["; \
	  sed 's/\\/\\\\/g; s/"/\\"/g; s/\t/\\t/g; s/^/    "/; s/$$/",/' bench.txt | sed '$$ s/,$$//'; \
	  echo "  ]"; \
	  echo "}"; \
	} > BENCH_PR4.json
	@rm -f bench.txt
	@echo "wrote BENCH_PR4.json"
