SHELL := /bin/bash

# Benchmarks captured in the committed baseline: engine sweep
# throughput, the model kernel, and the profiling pipeline (cold start,
# direct pass, frontend recording, per-config replay, warm-store
# replica cold start).
BENCH_PATTERN := Sweep|Kernel|ProfileColdStart|StoreColdStart|ProfileDirect|ProfileFrontendRecord|ProfileReplay
BENCH_COUNT   := 1

# The experiments package alone takes ~15 minutes under -race on slow
# machines (see CHANGES.md PR 4), which trips go test's default 10m
# per-package timeout; every tier-1 invocation carries an explicit
# budget instead.
TEST_TIMEOUT := 30m

.PHONY: test race bench-baseline

test:
	go build ./... && go test -timeout $(TEST_TIMEOUT) ./...

race:
	go test -race -timeout $(TEST_TIMEOUT) ./...

# bench-baseline regenerates BENCH_PR5.json at the repo root — the
# in-tree perf snapshot the CI bench job mirrors as per-run artifacts.
# Run it on an idle machine; the numbers land in the README table.
bench-baseline:
	set -o pipefail; \
	go test -run '^$$' -bench '$(BENCH_PATTERN)' -benchmem -count $(BENCH_COUNT) ./... | tee bench.txt
	{ \
	  echo "{"; \
	  echo "  \"commit\": \"$$(git rev-parse HEAD 2>/dev/null || echo unknown)$$(git diff --quiet HEAD 2>/dev/null || echo -dirty)\","; \
	  echo "  \"generated_by\": \"make bench-baseline\","; \
	  echo "  \"bench\": ["; \
	  sed 's/\\/\\\\/g; s/"/\\"/g; s/\t/\\t/g; s/^/    "/; s/$$/",/' bench.txt | sed '$$ s/,$$//'; \
	  echo "  ]"; \
	  echo "}"; \
	} > BENCH_PR5.json
	@rm -f bench.txt
	@echo "wrote BENCH_PR5.json"
