SHELL := /bin/bash

# Benchmarks captured in the committed baseline: engine sweep
# throughput (plain and with tracing instrumented, via the unanchored
# Sweep), the model kernel, the profiling pipeline (cold start, direct
# pass, frontend recording, per-config replay, warm-store replica cold
# start), and the wire protocol / coalesced streaming paths.
BENCH_PATTERN := Sweep|Kernel|ProfileColdStart|StoreColdStart|ProfileDirect|ProfileFrontendRecord|ProfileReplay|Wire|EvalStream|JSONRowEncode|Coalesced
BENCH_COUNT   := 1

# The experiments package alone takes ~15 minutes under -race on slow
# machines (see CHANGES.md PR 4), which trips go test's default 10m
# per-package timeout; every tier-1 invocation carries an explicit
# budget instead.
TEST_TIMEOUT := 30m

# Benchmarks the perf gate tracks: the gate subset of BENCH_PATTERN
# (sweep throughput, model kernel, both cold-start pipelines, the
# distributed FleetSweep and tracing-instrumented TracedSweep — via the
# unanchored Sweep — and the wire encode/decode, eval stream and
# coalesced broadcast paths).
GATE_PATTERN   := Sweep|KernelRun|ProfileColdStart|StoreColdStart|WireEncode|WireDecode|EvalStream|CoalescedEval
GATE_BASELINE  := BENCH_PR10.json
GATE_THRESHOLD := 0.25
# The gate runs each benchmark GATE_COUNT times and benchdiff takes the
# best observation, so shared-runner noise on the microsecond-scale
# wire benchmarks doesn't trip the threshold.
GATE_COUNT     := 3

.PHONY: test race fleet-smoke bench-baseline bench-gate

test:
	go build ./... && go test -timeout $(TEST_TIMEOUT) ./...

race:
	go test -race -timeout $(TEST_TIMEOUT) ./...

# fleet-smoke is the distributed-fabric correctness gate: three
# in-process replicas behind a coordinator serve the suite-wide Table 2
# sweep and the result must be byte-for-byte identical to a single
# node, including when one replica is killed mid-sweep; a traced sweep
# must stitch into one complete trace covering every shard.
fleet-smoke:
	go test -run 'TestFleetByteIdentity|TestFleetFailover|TestFleetErrorParity|TestFleetSelfCoordination|TestFleetTraceStitch' -count 1 -timeout $(TEST_TIMEOUT) -v ./internal/fleet/

# bench-baseline regenerates BENCH_PR10.json at the repo root — the
# in-tree perf snapshot the CI bench job mirrors as per-run artifacts.
# Run it on an idle machine; the numbers land in the README table.
bench-baseline:
	set -o pipefail; \
	go test -run '^$$' -bench '$(BENCH_PATTERN)' -benchmem -count $(BENCH_COUNT) ./... | tee bench.txt
	{ \
	  echo "{"; \
	  echo "  \"commit\": \"$$(git rev-parse HEAD 2>/dev/null || echo unknown)$$(git diff --quiet HEAD 2>/dev/null || echo -dirty)\","; \
	  echo "  \"generated_by\": \"make bench-baseline\","; \
	  echo "  \"bench\": ["; \
	  sed 's/\\/\\\\/g; s/"/\\"/g; s/\t/\\t/g; s/^/    "/; s/$$/",/' bench.txt | sed '$$ s/,$$//'; \
	  echo "  ]"; \
	  echo "}"; \
	} > BENCH_PR10.json
	@rm -f bench.txt
	@echo "wrote BENCH_PR10.json"

# bench-gate is the CI perf regression gate: run the tracked benchmarks
# and fail if any regresses more than GATE_THRESHOLD (ns/op or
# allocs/op) against the committed baseline. On failure the raw run is
# left in bench-gate.txt for inspection.
bench-gate:
	set -o pipefail; \
	go test -run '^$$' -bench '$(GATE_PATTERN)' -benchmem -count $(GATE_COUNT) ./... | tee bench-gate.txt
	go run ./cmd/benchdiff -baseline $(GATE_BASELINE) -current bench-gate.txt -threshold $(GATE_THRESHOLD)
	@rm -f bench-gate.txt
