package mppm

import (
	"context"
	"errors"
	"testing"
)

func TestKindByNameRoundTrip(t *testing.T) {
	for _, k := range []Kind{KindPredict, KindSimulate, KindCompare} {
		got, err := KindByName(k.String())
		if err != nil || got != k {
			t.Fatalf("KindByName(%q) = %v, %v", k.String(), got, err)
		}
	}
	if k, err := KindByName(""); err != nil || k != KindPredict {
		t.Fatalf("empty kind = %v, %v, want KindPredict", k, err)
	}
	if _, err := KindByName("frobnicate"); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("unknown kind error = %v, want ErrBadConfig", err)
	}
}

func TestEvalPredictGrid(t *testing.T) {
	sys, _ := quickSystem(t)
	mixes, err := RandomMixes(3, 2, 17)
	if err != nil {
		t.Fatal(err)
	}
	configs := LLCConfigs()[:2]
	res, err := sys.Eval(context.Background(),
		NewRequest(KindPredict, mixes, WithConfigs(configs...)))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Scenarios) != len(mixes)*len(configs) {
		t.Fatalf("%d scenarios, want %d", len(res.Scenarios), len(mixes)*len(configs))
	}
	for c := range configs {
		for m := range mixes {
			sc := res.At(c, m)
			if sc.Err != nil {
				t.Fatalf("scenario (%d,%d): %v", c, m, sc.Err)
			}
			if sc.Config.Name != configs[c].Name || sc.Mix.Key() != mixes[m].Key() {
				t.Fatalf("scenario (%d,%d) misaligned: %s on %s", c, m, sc.Mix, sc.Config.Name)
			}
			if sc.Prediction == nil || sc.Measurement != nil {
				t.Fatalf("predict scenario has wrong payloads: %+v", sc)
			}
			if sc.STP() <= 0 {
				t.Fatalf("scenario (%d,%d) STP %v", c, m, sc.STP())
			}
		}
		if res.MeanSTP(c) <= 0 || res.MeanANTT(c) < 1 {
			t.Fatalf("config %d means: STP %v ANTT %v", c, res.MeanSTP(c), res.MeanANTT(c))
		}
	}
	preds, err := res.Predictions()
	if err != nil || len(preds) != len(res.Scenarios) {
		t.Fatalf("Predictions: %d, %v", len(preds), err)
	}
	if rep, err := res.Confidence(); err != nil || rep.Mixes != len(res.Scenarios) {
		t.Fatalf("Confidence: %+v, %v", rep, err)
	}
}

func TestEvalCompareJoinsBothSides(t *testing.T) {
	sys, set := quickSystem(t)
	mix := Mix{"gamess", "lbm", "soplex", "povray"}
	res, err := sys.Eval(context.Background(),
		NewRequest(KindCompare, []Mix{mix}, WithProfiles(set)))
	if err != nil {
		t.Fatal(err)
	}
	sc := &res.Scenarios[0]
	if sc.Err != nil {
		t.Fatal(sc.Err)
	}
	if sc.Prediction == nil || sc.Measurement == nil {
		t.Fatalf("compare scenario missing a side: %+v", sc)
	}
	if e := sc.STPError(); e < -0.5 || e > 0.5 {
		t.Fatalf("STP error %v implausible", e)
	}
	if sc.Measurement.STP <= 0 || sc.Prediction.STP <= 0 {
		t.Fatal("degenerate STP")
	}
}

func TestEvalTopKKeepsWorstFirst(t *testing.T) {
	sys, set := quickSystem(t)
	mixes, err := RandomMixes(12, 4, 21)
	if err != nil {
		t.Fatal(err)
	}
	full, err := sys.Eval(context.Background(),
		NewRequest(KindPredict, mixes, WithProfiles(set)))
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Eval(context.Background(),
		NewRequest(KindPredict, mixes, WithProfiles(set), WithTopK(3)))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Scenarios) != 3 {
		t.Fatalf("TopK kept %d scenarios, want 3", len(res.Scenarios))
	}
	for i := 1; i < len(res.Scenarios); i++ {
		if res.Scenarios[i].STP() < res.Scenarios[i-1].STP() {
			t.Fatal("TopK scenarios not sorted worst-first")
		}
	}
	// The kept worst must be the global minimum of the full grid.
	min := full.Scenarios[0].STP()
	for i := range full.Scenarios {
		if s := full.Scenarios[i].STP(); s < min {
			min = s
		}
	}
	if res.Scenarios[0].STP() != min {
		t.Fatalf("TopK worst %v != grid min %v", res.Scenarios[0].STP(), min)
	}
}

func TestEvalTypedErrors(t *testing.T) {
	sys, _ := quickSystem(t)
	ctx := context.Background()

	if _, err := sys.Eval(ctx, NewRequest(KindPredict, nil)); !errors.Is(err, ErrEmptyMix) {
		t.Fatalf("no mixes: %v, want ErrEmptyMix", err)
	}
	if _, err := sys.Eval(ctx, NewRequest(KindPredict, []Mix{{}})); !errors.Is(err, ErrEmptyMix) {
		t.Fatalf("empty mix: %v, want ErrEmptyMix", err)
	}
	if _, err := sys.Eval(ctx, NewRequest(Kind(42), []Mix{{"gamess"}})); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("bad kind: %v, want ErrBadConfig", err)
	}
	bad := LLCConfig{Name: "bogus", SizeBytes: 3, Ways: 1, LineSize: 64}
	if _, err := sys.Eval(ctx, NewRequest(KindPredict, []Mix{{"gamess"}}, WithConfigs(bad))); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("bad config: %v, want ErrBadConfig", err)
	}

	// An invalid WithScale surfaces as ErrBadConfig from the first
	// evaluation, per the NewSystem contract.
	badScale := NewSystem(DefaultLLC(), WithScale(-1, 100))
	res0, err := badScale.Eval(ctx, NewRequest(KindPredict, []Mix{{"gamess"}}))
	if err != nil {
		t.Fatal(err)
	}
	if !errors.Is(res0.Scenarios[0].Err, ErrBadConfig) {
		t.Fatalf("bad scale: %v, want ErrBadConfig", res0.Scenarios[0].Err)
	}

	// Per-scenario errors are captured, not fatal to the batch.
	res, err := sys.Eval(ctx, NewRequest(KindPredict, []Mix{{"gamess"}, {"nope"}}))
	if err != nil {
		t.Fatal(err)
	}
	if res.Scenarios[0].Err != nil {
		t.Fatalf("good mix failed: %v", res.Scenarios[0].Err)
	}
	if !errors.Is(res.Scenarios[1].Err, ErrUnknownBenchmark) {
		t.Fatalf("unknown benchmark: %v, want ErrUnknownBenchmark", res.Scenarios[1].Err)
	}
	if !errors.Is(res.Err(), ErrUnknownBenchmark) {
		t.Fatalf("Result.Err: %v", res.Err())
	}

	// An explicit profile set missing a benchmark yields ErrNoProfiles.
	small := NewProfileSet()
	res, err = sys.Eval(ctx, NewRequest(KindPredict, []Mix{{"gamess"}}, WithProfiles(small)))
	if err != nil {
		t.Fatal(err)
	}
	if !errors.Is(res.Scenarios[0].Err, ErrNoProfiles) {
		t.Fatalf("missing profile: %v, want ErrNoProfiles", res.Scenarios[0].Err)
	}
}

func TestEvalStreamYieldsInOrder(t *testing.T) {
	sys, set := quickSystem(t)
	mixes, err := RandomMixes(6, 2, 23)
	if err != nil {
		t.Fatal(err)
	}
	req := NewRequest(KindPredict, mixes, WithProfiles(set))
	want, err := sys.Eval(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	i := 0
	for sc, err := range sys.EvalStream(context.Background(), req) {
		if err != nil {
			t.Fatalf("scenario %d: %v", i, err)
		}
		if sc.Mix.Key() != want.Scenarios[i].Mix.Key() {
			t.Fatalf("scenario %d out of order: %v", i, sc.Mix)
		}
		if sc.STP() != want.Scenarios[i].STP() {
			t.Fatalf("scenario %d STP %v != Eval %v", i, sc.STP(), want.Scenarios[i].STP())
		}
		i++
	}
	if i != len(want.Scenarios) {
		t.Fatalf("stream yielded %d scenarios, want %d", i, len(want.Scenarios))
	}
}

// TestEvalStreamCancelMidStream is the acceptance-criteria test:
// EvalStream yields incrementally, and cancelling the context mid-
// stream terminates the iteration with ctx.Err() instead of the
// remaining scenarios.
func TestEvalStreamCancelMidStream(t *testing.T) {
	sys, set := quickSystem(t)
	mixes, err := RandomMixes(8, 2, 29)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	var yielded int
	var terminal error
	for sc, err := range sys.EvalStream(ctx, NewRequest(KindPredict, mixes, WithProfiles(set))) {
		if err != nil {
			terminal = err
			if sc.Mix != nil {
				t.Fatalf("terminal error carried a scenario: %v", sc.Mix)
			}
			break
		}
		yielded++
		cancel() // cancel after the first successful scenario
	}
	if !errors.Is(terminal, context.Canceled) {
		t.Fatalf("terminal error %v, want context.Canceled", terminal)
	}
	if yielded == 0 || yielded >= len(mixes) {
		t.Fatalf("yielded %d scenarios before cancel, want 0 < n < %d", yielded, len(mixes))
	}
}

func TestEvalStreamRejectsTopK(t *testing.T) {
	sys, set := quickSystem(t)
	mixes, _ := RandomMixes(2, 2, 31)
	for _, err := range sys.EvalStream(context.Background(),
		NewRequest(KindPredict, mixes, WithProfiles(set), WithTopK(1))) {
		if !errors.Is(err, ErrBadConfig) {
			t.Fatalf("TopK stream error %v, want ErrBadConfig", err)
		}
		return
	}
	t.Fatal("stream yielded nothing")
}

func TestEvalSimulateScenario(t *testing.T) {
	sys, _ := quickSystem(t)
	res, err := sys.Eval(context.Background(),
		NewRequest(KindSimulate, []Mix{{"povray", "namd"}}))
	if err != nil {
		t.Fatal(err)
	}
	sc := &res.Scenarios[0]
	if sc.Err != nil {
		t.Fatal(sc.Err)
	}
	if sc.Measurement == nil || sc.Prediction != nil {
		t.Fatalf("simulate scenario has wrong payloads: %+v", sc)
	}
	if sc.Measurement.STP < 1.8 || sc.Measurement.STP > 2.0+1e-9 {
		t.Fatalf("compute pair STP = %v, want ~2", sc.Measurement.STP)
	}
}
