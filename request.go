package mppm

import (
	"context"
	"fmt"
	"iter"
	"sort"

	"repro/internal/engine"
	"repro/internal/stats"
)

// Kind selects how a Request's scenarios are evaluated.
type Kind int

const (
	// KindPredict evaluates the analytical MPPM model (~ms per mix).
	KindPredict Kind = iota
	// KindSimulate runs the detailed multi-core reference simulator.
	KindSimulate
	// KindCompare runs both and pairs them per scenario, so model error
	// can be read off directly (the paper's Figure 4 comparison).
	KindCompare
)

// String returns the kind's wire name ("predict", "simulate", "compare").
func (k Kind) String() string {
	switch k {
	case KindPredict:
		return "predict"
	case KindSimulate:
		return "simulate"
	case KindCompare:
		return "compare"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// KindByName parses a wire name produced by Kind.String. The empty
// string means KindPredict.
func KindByName(name string) (Kind, error) {
	switch name {
	case "predict", "":
		return KindPredict, nil
	case "simulate":
		return KindSimulate, nil
	case "compare":
		return KindCompare, nil
	default:
		return 0, fmt.Errorf("mppm: unknown evaluation kind %q: %w", name, ErrBadConfig)
	}
}

// Request is the one canonical way to ask for evaluations: a set of
// workload mixes, an evaluation kind, one or more LLC configurations
// and solver options. Single calls, batches, design-space sweeps,
// model-vs-simulation comparisons and stress searches are all shapes of
// the same request, and System.Eval executes every shape through the
// evaluation engine — one code path with cancellation, bounded
// concurrency, singleflight profile caching and deterministic ordering.
//
// Build requests with NewRequest and the functional options:
//
//	req := mppm.NewRequest(mppm.KindPredict, mixes,
//	    mppm.WithConfigs(mppm.LLCConfigs()...), // sweep all Table 2 configs
//	    mppm.WithOptions(mppm.ModelOptions{}),  // solver knobs
//	    mppm.WithTopK(10))                      // keep the 10 worst-STP scenarios
type Request struct {
	// Kind selects the evaluation: KindPredict (default), KindSimulate
	// or KindCompare.
	Kind Kind
	// Mixes are the workloads to evaluate; at least one, none empty.
	Mixes []Mix
	// Configs are the LLC configurations to evaluate every mix on.
	// Empty means the owning System's configured LLC.
	Configs []LLCConfig
	// Options tunes the MPPM solver; the zero value is the paper's
	// parameterization. Ignored by pure-simulation scenarios.
	Options ModelOptions
	// TopK, when positive, makes Eval retain only the TopK lowest-STP
	// scenarios, worst first — the Section 6 stress-workload search.
	// Failed scenarios are kept after the selection so errors stay
	// visible. Zero keeps everything in grid order.
	TopK int
	// Profiles, when non-nil, supplies single-core profiles explicitly
	// (derived or deserialized sets) instead of the engine's cache.
	Profiles *ProfileSet
}

// Option is a functional option for NewRequest.
type Option func(*Request)

// WithOptions sets the MPPM solver options for every scenario.
func WithOptions(o ModelOptions) Option {
	return func(r *Request) { r.Options = o }
}

// WithConfigs sets the LLC configurations the request sweeps over.
func WithConfigs(cfgs ...LLCConfig) Option {
	return func(r *Request) { r.Configs = cfgs }
}

// WithTopK keeps only the k lowest-STP scenarios, worst first.
func WithTopK(k int) Option {
	return func(r *Request) { r.TopK = k }
}

// WithProfiles supplies an explicit single-core profile set.
func WithProfiles(set *ProfileSet) Option {
	return func(r *Request) { r.Profiles = set }
}

// NewRequest builds a Request for the given mixes.
func NewRequest(kind Kind, mixes []Mix, opts ...Option) Request {
	r := Request{Kind: kind, Mixes: mixes}
	for _, o := range opts {
		o(&r)
	}
	return r
}

// Scenario is the outcome of evaluating one (mix, LLC configuration)
// pair. Exactly one of Err or the payload pointers is meaningful:
// Prediction for KindPredict, Measurement for KindSimulate, both for
// KindCompare.
type Scenario struct {
	Mix    Mix
	Config LLCConfig
	Err    error

	Prediction  *Prediction
	Measurement *Measurement
}

// STP returns the scenario's system throughput: the model's estimate
// when present, else the measured value. Zero on a failed scenario.
func (sc *Scenario) STP() float64 {
	if sc.Prediction != nil {
		return sc.Prediction.STP
	}
	if sc.Measurement != nil {
		return sc.Measurement.STP
	}
	return 0
}

// ANTT returns the scenario's average normalized turnaround time, with
// the same preference order as STP.
func (sc *Scenario) ANTT() float64 {
	if sc.Prediction != nil {
		return sc.Prediction.ANTT
	}
	if sc.Measurement != nil {
		return sc.Measurement.ANTT
	}
	return 0
}

// STPError returns the model's relative STP error for a KindCompare
// scenario (NaN-free: zero unless both sides are present).
func (sc *Scenario) STPError() float64 {
	if sc.Prediction == nil || sc.Measurement == nil || sc.Measurement.STP == 0 {
		return 0
	}
	return (sc.Prediction.STP - sc.Measurement.STP) / sc.Measurement.STP
}

// ANTTError returns the model's relative ANTT error for a KindCompare
// scenario.
func (sc *Scenario) ANTTError() float64 {
	if sc.Prediction == nil || sc.Measurement == nil || sc.Measurement.ANTT == 0 {
		return 0
	}
	return (sc.Prediction.ANTT - sc.Measurement.ANTT) / sc.Measurement.ANTT
}

// Result is the outcome of one Eval: every scenario of the request in
// config-major grid order (all mixes of Configs[0] first), unless TopK
// reordered and trimmed it.
type Result struct {
	Kind      Kind
	Mixes     []Mix
	Configs   []LLCConfig
	Scenarios []Scenario
}

// At returns the scenario of mix m on config c (grid order; do not use
// after a TopK request, which reorders Scenarios).
func (r *Result) At(c, m int) *Scenario {
	return &r.Scenarios[c*len(r.Mixes)+m]
}

// Err returns the first per-scenario error, or nil if every scenario
// succeeded.
func (r *Result) Err() error {
	for i := range r.Scenarios {
		if err := r.Scenarios[i].Err; err != nil {
			return err
		}
	}
	return nil
}

// Predictions unpacks the per-scenario model results in order, failing
// on the first scenario error.
func (r *Result) Predictions() ([]*Prediction, error) {
	out := make([]*Prediction, len(r.Scenarios))
	for i := range r.Scenarios {
		if err := r.Scenarios[i].Err; err != nil {
			return nil, err
		}
		out[i] = r.Scenarios[i].Prediction
	}
	return out, nil
}

// Measurements unpacks the per-scenario simulation results in order,
// failing on the first scenario error.
func (r *Result) Measurements() ([]*Measurement, error) {
	out := make([]*Measurement, len(r.Scenarios))
	for i := range r.Scenarios {
		if err := r.Scenarios[i].Err; err != nil {
			return nil, err
		}
		out[i] = r.Scenarios[i].Measurement
	}
	return out, nil
}

// MeanSTP averages STP over config row c's successful scenarios — the
// Section 5 design-ranking quantity.
func (r *Result) MeanSTP(c int) float64 {
	sum, n := 0.0, 0
	for m := range r.Mixes {
		if sc := r.At(c, m); sc.Err == nil {
			sum += sc.STP()
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// MeanANTT averages ANTT over config row c's successful scenarios.
func (r *Result) MeanANTT(c int) float64 {
	sum, n := 0.0, 0
	for m := range r.Mixes {
		if sc := r.At(c, m); sc.Err == nil {
			sum += sc.ANTT()
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// Confidence summarizes the result's STP and ANTT with 95% confidence
// bounds over all successful scenarios — the paper's contribution #3.
// It fails if any scenario failed or fewer than two succeeded.
func (r *Result) Confidence() (*ConfidenceReport, error) {
	if err := r.Err(); err != nil {
		return nil, err
	}
	stp := make([]float64, len(r.Scenarios))
	antt := make([]float64, len(r.Scenarios))
	for i := range r.Scenarios {
		stp[i] = r.Scenarios[i].STP()
		antt[i] = r.Scenarios[i].ANTT()
	}
	ciS, err := stats.MeanCI(stp, 0.95)
	if err != nil {
		return nil, err
	}
	ciA, err := stats.MeanCI(antt, 0.95)
	if err != nil {
		return nil, err
	}
	return &ConfidenceReport{Mixes: len(r.Scenarios), STP: ciS, ANTT: ciA}, nil
}

// evalPlan is a validated request lowered onto engine jobs: per engine
// jobs per scenario (2 for KindCompare), scenarios in config-major
// order.
type evalPlan struct {
	mixes   []Mix
	configs []LLCConfig
	jobs    []engine.Job
	per     int
}

// plan validates req and lowers it to engine jobs.
func (s *System) plan(req Request) (*evalPlan, error) {
	if len(req.Mixes) == 0 {
		return nil, fmt.Errorf("mppm: request has no mixes: %w", ErrEmptyMix)
	}
	for i, m := range req.Mixes {
		if len(m) == 0 {
			return nil, fmt.Errorf("mppm: mix %d: %w", i, ErrEmptyMix)
		}
	}
	if req.TopK < 0 {
		return nil, fmt.Errorf("mppm: negative TopK %d: %w", req.TopK, ErrBadConfig)
	}
	var kinds []engine.Kind
	switch req.Kind {
	case KindPredict:
		kinds = []engine.Kind{engine.Predict}
	case KindSimulate:
		kinds = []engine.Kind{engine.Simulate}
	case KindCompare:
		kinds = []engine.Kind{engine.Predict, engine.Simulate}
	default:
		return nil, fmt.Errorf("mppm: unknown evaluation kind %d: %w", int(req.Kind), ErrBadConfig)
	}
	configs := req.Configs
	if len(configs) == 0 {
		configs = []LLCConfig{s.LLC()}
	}
	for _, c := range configs {
		if err := c.Validate(); err != nil {
			return nil, err
		}
	}
	jobs := make([]engine.Job, 0, len(configs)*len(req.Mixes)*len(kinds))
	for _, llc := range configs {
		for _, mix := range req.Mixes {
			for _, k := range kinds {
				jobs = append(jobs, engine.Job{
					Mix: mix, LLC: llc, Kind: k,
					Opts: req.Options, Profiles: req.Profiles,
				})
			}
		}
	}
	return &evalPlan{mixes: req.Mixes, configs: configs, jobs: jobs, per: len(kinds)}, nil
}

// scenario joins one scenario's engine results (one job, or the
// predict+simulate pair of a KindCompare scenario).
func (p *evalPlan) scenario(rs []engine.Result) Scenario {
	sc := Scenario{Mix: rs[0].Job.Mix, Config: rs[0].Job.LLC}
	for _, r := range rs {
		if r.Err != nil {
			if sc.Err == nil {
				sc.Err = r.Err
			}
			continue
		}
		switch r.Job.Kind {
		case engine.Predict:
			sc.Prediction = r.Prediction
		case engine.Simulate:
			sc.Measurement = &Measurement{
				Benchmarks: r.Benchmarks,
				SingleCPI:  r.SingleCPI,
				MultiCPI:   r.MultiCPI,
				Slowdown:   r.Slowdown,
				STP:        r.STP,
				ANTT:       r.ANTT,
			}
		}
	}
	return sc
}

// Eval executes a Request through the evaluation engine and returns
// every scenario. Per-scenario failures (unknown benchmark, solver
// divergence) are captured in Scenario.Err and do not abort the batch;
// Eval itself fails only on an invalid request or context cancellation.
func (s *System) Eval(ctx context.Context, req Request) (*Result, error) {
	plan, err := s.plan(req)
	if err != nil {
		return nil, err
	}
	results, err := s.engine().Run(ctx, plan.jobs)
	if err != nil {
		return nil, err
	}
	scenarios := make([]Scenario, len(results)/plan.per)
	for i := range scenarios {
		scenarios[i] = plan.scenario(results[i*plan.per : (i+1)*plan.per])
	}
	res := &Result{Kind: req.Kind, Mixes: plan.mixes, Configs: plan.configs, Scenarios: scenarios}
	if req.TopK > 0 {
		res.keepWorst(req.TopK)
	}
	return res, nil
}

// keepWorst retains the k lowest-STP successful scenarios, worst first,
// then any failed scenarios so errors stay visible.
func (r *Result) keepWorst(k int) {
	ok := make([]Scenario, 0, len(r.Scenarios))
	var failed []Scenario
	for _, sc := range r.Scenarios {
		if sc.Err != nil {
			failed = append(failed, sc)
			continue
		}
		ok = append(ok, sc)
	}
	sort.SliceStable(ok, func(a, b int) bool { return ok[a].STP() < ok[b].STP() })
	if k < len(ok) {
		ok = ok[:k]
	}
	r.Scenarios = append(ok, failed...)
}

// EvalStream executes a Request like Eval but yields each scenario as
// soon as it — and every scenario before it — has finished, so sweeps
// of tens of thousands of scenarios can be consumed (ranked, streamed
// over HTTP, written to disk) incrementally. Scenarios arrive in
// config-major grid order; the paired error is the scenario's own Err.
//
// When ctx is cancelled mid-stream, EvalStream stops yielding scenarios
// and yields one final (zero Scenario, ctx.Err()) pair. Breaking out of
// the loop early cancels the remaining work. TopK requests need the
// whole grid and are rejected; use Eval.
func (s *System) EvalStream(ctx context.Context, req Request) iter.Seq2[Scenario, error] {
	return func(yield func(Scenario, error) bool) {
		plan, err := s.plan(req)
		if err != nil {
			yield(Scenario{}, err)
			return
		}
		if req.TopK > 0 {
			yield(Scenario{}, fmt.Errorf("mppm: TopK needs the full grid, use Eval: %w", ErrBadConfig))
			return
		}
		buf := make([]engine.Result, 0, plan.per)
		for _, r := range s.engine().Stream(ctx, plan.jobs) {
			if ctx.Err() != nil {
				yield(Scenario{}, ctx.Err())
				return
			}
			buf = append(buf, r)
			if len(buf) < plan.per {
				continue
			}
			sc := plan.scenario(buf)
			buf = buf[:0]
			if !yield(sc, sc.Err) {
				return
			}
		}
		if ctx.Err() != nil {
			yield(Scenario{}, ctx.Err())
		}
	}
}
