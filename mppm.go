// Package mppm is the public facade of the Multi-Program Performance
// Model reproduction (Van Craeynest & Eeckhout, "The Multi-Program
// Performance Model: Debunking Current Practice in Multi-Core
// Simulation", IISWC 2011).
//
// The package wires together the internal building blocks — synthetic
// benchmark traces, the trace-driven multi-core simulator, single-core
// profiling, cache contention models and the iterative MPPM solver —
// behind a small API:
//
//	suite := mppm.Benchmarks()                  // the 29 synthetic benchmarks
//	sys := mppm.NewSystem(mppm.DefaultLLC())    // Table 1 machine + an LLC
//	set, _ := sys.ProfileAll(suite)             // one-time single-core profiling
//	pred, _ := sys.Predict(set, []string{"gamess", "lbm", "soplex", "mcf"})
//	meas, _ := sys.Simulate([]string{"gamess", "lbm", "soplex", "mcf"})
//
// Predict evaluates the analytical model in well under a second per mix;
// Simulate runs the detailed reference simulator. Both report per-program
// multi-core CPIs plus the STP and ANTT metrics, so model and simulation
// are directly comparable (the paper's Figure 4).
package mppm

import (
	"context"
	"fmt"
	"io"
	"sync"

	"repro/internal/cache"
	"repro/internal/contention"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/metrics"
	"repro/internal/profile"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Re-exported building blocks. The aliases keep example and downstream
// code on a single import while the implementation lives in internal
// packages.
type (
	// Benchmark describes one synthetic benchmark (see internal/trace).
	Benchmark = trace.Spec
	// LLCConfig describes a last-level cache configuration.
	LLCConfig = cache.Config
	// Profile is a single-core simulation profile.
	Profile = profile.Profile
	// ProfileSet maps benchmark names to profiles.
	ProfileSet = profile.Set
	// Prediction is an MPPM model result.
	Prediction = core.Result
	// ModelOptions tunes the MPPM solver.
	ModelOptions = core.Options
	// Mix is a multi-program workload.
	Mix = workload.Mix
	// ContentionModel estimates sharing-induced conflict misses.
	ContentionModel = contention.Model
)

// NewProfileSet builds a ProfileSet from profiles, keyed by benchmark
// name (useful with derived profiles, see Profile.DeriveAssociativity).
func NewProfileSet(ps ...*Profile) *ProfileSet { return profile.NewSet(ps...) }

// ReadProfileSet deserializes a profile set written by
// (*ProfileSet).WriteJSON, validating every profile.
func ReadProfileSet(r io.Reader) (*ProfileSet, error) {
	return profile.ReadSetJSON(r)
}

// Benchmarks returns the 29 synthetic SPEC CPU2006 stand-ins.
func Benchmarks() []Benchmark { return trace.Suite() }

// BenchmarkNames returns the suite's benchmark names, sorted.
func BenchmarkNames() []string { return trace.SuiteNames() }

// BenchmarkByName returns one benchmark by name.
func BenchmarkByName(name string) (Benchmark, error) { return trace.ByName(name) }

// LLCConfigs returns the paper's Table 2 configurations.
func LLCConfigs() []LLCConfig { return cache.LLCConfigs() }

// LLCConfigByName returns a Table 2 configuration by name ("config#1".."config#6").
func LLCConfigByName(name string) (LLCConfig, error) { return cache.LLCConfigByName(name) }

// DefaultLLC returns configuration #1, the paper's default (smallest LLC,
// chosen "to stress our model").
func DefaultLLC() LLCConfig { return cache.LLCConfigs()[0] }

// ContentionModels returns the available cache contention models, the
// paper's FOA first.
func ContentionModels() []ContentionModel { return contention.Models() }

// ContentionModelByName returns a contention model by name.
func ContentionModelByName(name string) (ContentionModel, error) {
	return contention.ByName(name)
}

// System is a fully configured machine: the Table 1 baseline core and
// private caches plus one shared LLC configuration, at a given trace
// scale. Batch methods share one lazily-built evaluation engine, so
// repeated calls reuse cached single-core profiles.
type System struct {
	cfg sim.Config

	engOnce sync.Once
	eng     *engine.Engine
}

// NewSystem builds a System with the paper's baseline core/private-cache
// parameters and the given LLC, at the default 10M-instruction scale.
func NewSystem(llc LLCConfig) *System {
	return &System{cfg: sim.DefaultConfig(llc)}
}

// NewSystemScaled builds a System with custom trace and profiling
// interval lengths (useful for quick experimentation; accuracy
// conclusions should use the default scale).
func NewSystemScaled(llc LLCConfig, traceLength, intervalLength int64) (*System, error) {
	cfg := sim.DefaultConfig(llc)
	cfg.TraceLength = traceLength
	cfg.IntervalLength = intervalLength
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &System{cfg: cfg}, nil
}

// LLC returns the system's LLC configuration.
func (s *System) LLC() LLCConfig { return s.cfg.Hierarchy.LLC }

// TraceLength returns the per-benchmark trace length in instructions.
func (s *System) TraceLength() int64 { return s.cfg.TraceLength }

// Profile runs one benchmark in isolation and returns its single-core
// profile (CPI, memory CPI and LLC stack distance counters per interval).
func (s *System) Profile(b Benchmark) (*Profile, error) {
	return sim.Profile(b, s.cfg)
}

// ProfileAll profiles many benchmarks in parallel — the paper's one-time
// cost preceding any number of model evaluations.
func (s *System) ProfileAll(bs []Benchmark) (*ProfileSet, error) {
	return sim.ProfileSuite(bs, s.cfg)
}

// Predict evaluates MPPM for the mix using default model options.
func (s *System) Predict(set *ProfileSet, mix []string) (*Prediction, error) {
	return core.Predict(set, mix, core.Options{})
}

// PredictWithOptions evaluates MPPM with explicit solver options.
func (s *System) PredictWithOptions(set *ProfileSet, mix []string, opts ModelOptions) (*Prediction, error) {
	return core.Predict(set, mix, opts)
}

// Measurement reports a detailed multi-core simulation in the same shape
// as a Prediction, so the two are directly comparable.
type Measurement struct {
	Benchmarks []string
	SingleCPI  []float64
	MultiCPI   []float64
	Slowdown   []float64
	STP        float64
	ANTT       float64
}

// Simulate runs the detailed multi-core reference simulator for a mix
// and derives STP/ANTT against the given profile set's single-core CPIs.
// When set is nil the single-core CPIs are profiled on the fly.
func (s *System) SimulateWithProfiles(set *ProfileSet, mix []string) (*Measurement, error) {
	specs := make([]trace.Spec, len(mix))
	for i, n := range mix {
		b, err := trace.ByName(n)
		if err != nil {
			return nil, err
		}
		specs[i] = b
	}
	res, err := sim.RunMulticore(specs, s.cfg, nil)
	if err != nil {
		return nil, err
	}
	sc := make([]float64, len(mix))
	for i, n := range mix {
		var p *Profile
		if set != nil {
			if p, err = set.Get(n); err != nil {
				return nil, err
			}
		} else {
			if p, err = sim.Profile(specs[i], s.cfg); err != nil {
				return nil, err
			}
		}
		sc[i] = p.CPI()
	}
	m := &Measurement{
		Benchmarks: res.Benchmarks,
		SingleCPI:  sc,
		MultiCPI:   res.CPI,
	}
	if m.Slowdown, err = metrics.Slowdowns(sc, res.CPI); err != nil {
		return nil, err
	}
	if m.STP, err = metrics.STP(sc, res.CPI); err != nil {
		return nil, err
	}
	if m.ANTT, err = metrics.ANTT(sc, res.CPI); err != nil {
		return nil, err
	}
	return m, nil
}

// Simulate is SimulateWithProfiles with on-the-fly single-core profiling.
func (s *System) Simulate(mix []string) (*Measurement, error) {
	return s.SimulateWithProfiles(nil, mix)
}

// Compare holds a side-by-side prediction and measurement for one mix.
type Compare struct {
	Prediction  *Prediction
	Measurement *Measurement
}

// STPError returns the prediction's relative STP error.
func (c Compare) STPError() float64 {
	return (c.Prediction.STP - c.Measurement.STP) / c.Measurement.STP
}

// ANTTError returns the prediction's relative ANTT error.
func (c Compare) ANTTError() float64 {
	return (c.Prediction.ANTT - c.Measurement.ANTT) / c.Measurement.ANTT
}

// CompareMix predicts and simulates the same mix.
func (s *System) CompareMix(set *ProfileSet, mix []string) (*Compare, error) {
	pred, err := s.Predict(set, mix)
	if err != nil {
		return nil, err
	}
	meas, err := s.SimulateWithProfiles(set, mix)
	if err != nil {
		return nil, err
	}
	return &Compare{Prediction: pred, Measurement: meas}, nil
}

// ConfidenceReport summarizes MPPM predictions over many mixes with 95%
// confidence bounds — the paper's contribution #3 ("MPPM provides
// confidence bounds on its performance estimates").
type ConfidenceReport struct {
	Mixes int
	STP   stats.ConfidenceInterval
	ANTT  stats.ConfidenceInterval
}

// PredictMany evaluates MPPM over many mixes and returns the per-mix
// results plus a confidence report.
func (s *System) PredictMany(set *ProfileSet, mixes []Mix, opts ModelOptions) ([]*Prediction, *ConfidenceReport, error) {
	if len(mixes) == 0 {
		return nil, nil, fmt.Errorf("mppm: no mixes")
	}
	preds := make([]*Prediction, len(mixes))
	stp := make([]float64, len(mixes))
	antt := make([]float64, len(mixes))
	for i, mix := range mixes {
		p, err := core.Predict(set, mix, opts)
		if err != nil {
			return nil, nil, err
		}
		preds[i] = p
		stp[i] = p.STP
		antt[i] = p.ANTT
	}
	ciS, err := stats.MeanCI(stp, 0.95)
	if err != nil {
		return nil, nil, err
	}
	ciA, err := stats.MeanCI(antt, 0.95)
	if err != nil {
		return nil, nil, err
	}
	return preds, &ConfidenceReport{Mixes: len(mixes), STP: ciS, ANTT: ciA}, nil
}

// engine returns the system's shared evaluation engine, built on first
// use at the system's trace scale.
func (s *System) engine() *engine.Engine {
	s.engOnce.Do(func() {
		s.eng = engine.New(engine.Config{
			TraceLength:    s.cfg.TraceLength,
			IntervalLength: s.cfg.IntervalLength,
		})
	})
	return s.eng
}

// PredictBatch evaluates MPPM for many mixes concurrently on the
// system's LLC, bounded by GOMAXPROCS workers, with results aligned to
// the input order. Single-core profiles are computed at most once per
// benchmark across all batch calls on this System; cancel ctx to abort
// mid-batch.
func (s *System) PredictBatch(ctx context.Context, mixes []Mix) ([]*Prediction, error) {
	return s.PredictBatchWithOptions(ctx, mixes, ModelOptions{})
}

// PredictBatchWithOptions is PredictBatch with explicit solver options.
func (s *System) PredictBatchWithOptions(ctx context.Context, mixes []Mix, opts ModelOptions) ([]*Prediction, error) {
	jobs := engine.SweepJobs(mixes, []cache.Config{s.LLC()}, engine.Predict, opts)
	results, err := s.engine().Run(ctx, jobs)
	if err != nil {
		return nil, err
	}
	return engine.Predictions(results)
}

// SweepResult reports a design-space sweep: every mix evaluated on
// every LLC configuration.
type SweepResult struct {
	Configs []LLCConfig
	Mixes   []Mix
	// Predictions[c][m] is Mixes[m] evaluated on Configs[c].
	Predictions [][]*Prediction
}

// MeanSTP returns the average predicted STP of configuration c over all
// mixes — the Section 5 design-ranking quantity.
func (r *SweepResult) MeanSTP(c int) float64 {
	if len(r.Predictions[c]) == 0 {
		return 0
	}
	sum := 0.0
	for _, p := range r.Predictions[c] {
		sum += p.STP
	}
	return sum / float64(len(r.Predictions[c]))
}

// Sweep evaluates MPPM for every mix on every LLC configuration through
// the system's evaluation engine (nil configs means all six Table 2
// configurations). The engine's singleflight cache guarantees each
// (benchmark, LLC) single-core profile is computed at most once across
// the whole sweep, no matter how many mixes share a benchmark.
func (s *System) Sweep(ctx context.Context, mixes []Mix, configs []LLCConfig) (*SweepResult, error) {
	return s.SweepWithOptions(ctx, mixes, configs, ModelOptions{})
}

// SweepWithOptions is Sweep with explicit solver options.
func (s *System) SweepWithOptions(ctx context.Context, mixes []Mix, configs []LLCConfig, opts ModelOptions) (*SweepResult, error) {
	if configs == nil {
		configs = LLCConfigs()
	}
	grid, err := s.engine().Sweep(ctx, mixes, configs, engine.Predict, opts)
	if err != nil {
		return nil, err
	}
	res := &SweepResult{
		Configs:     configs,
		Mixes:       mixes,
		Predictions: make([][]*Prediction, len(configs)),
	}
	for c := range configs {
		row, err := engine.Predictions(grid[c])
		if err != nil {
			return nil, err
		}
		res.Predictions[c] = row
	}
	return res, nil
}

// RandomMixes draws deterministic random workload mixes over the suite.
func RandomMixes(count, cores int, seed int64) ([]Mix, error) {
	s, err := workload.NewSampler(trace.SuiteNames(), seed)
	if err != nil {
		return nil, err
	}
	return s.RandomMixes(count, cores, true)
}

// NumMixes returns C(N+M-1, M): the number of distinct M-program mixes
// over N benchmarks (the combinatorial explosion of Section 1).
func NumMixes(benchmarks, cores int) (int64, error) {
	return workload.NumMixes(benchmarks, cores)
}

// StressMix describes one low-STP workload found by StressSearch.
type StressMix struct {
	Mix Mix
	STP float64
	// WorstProgram and WorstSlowdown identify the program the model says
	// suffers most.
	WorstProgram  string
	WorstSlowdown float64
}

// StressSearch evaluates MPPM over the given mixes and returns the k
// lowest-STP workloads, worst first — the Section 6 use case: finding
// stress workloads without simulating them.
func (s *System) StressSearch(set *ProfileSet, mixes []Mix, k int) ([]StressMix, error) {
	if k < 1 {
		return nil, fmt.Errorf("mppm: k < 1")
	}
	all := make([]StressMix, 0, len(mixes))
	for _, mix := range mixes {
		p, err := core.Predict(set, mix, core.Options{})
		if err != nil {
			return nil, err
		}
		name, slow := p.MaxSlowdown()
		all = append(all, StressMix{
			Mix: mix, STP: p.STP, WorstProgram: name, WorstSlowdown: slow,
		})
	}
	// Partial selection sort: k is small.
	if k > len(all) {
		k = len(all)
	}
	for i := 0; i < k; i++ {
		min := i
		for j := i + 1; j < len(all); j++ {
			if all[j].STP < all[min].STP {
				min = j
			}
		}
		all[i], all[min] = all[min], all[i]
	}
	return all[:k], nil
}

// Class labels a benchmark memory-intensive or compute-intensive, the
// way Section 5's category-structured practice buckets the suite.
type Class = workload.Class

// Classification constants.
const (
	Compute = workload.Compute
	Memory  = workload.Memory
)

// Classify labels every profiled benchmark by memory intensity
// (MemCPI/CPI >= threshold means memory-intensive). Pass
// DefaultMemIntensityThreshold for the standard split.
func Classify(set *ProfileSet, threshold float64) map[string]Class {
	return workload.Classify(set, threshold)
}

// DefaultMemIntensityThreshold is the standard MEM/COMP split point.
const DefaultMemIntensityThreshold = workload.DefaultMemIntensityThreshold

// TraceSource is a replayable memory-reference stream; synthetic
// benchmarks, recorded traces and user implementations all satisfy it.
type TraceSource = trace.Source

// ExportTrace serializes a benchmark's reference stream at the given
// length to w in the repository's binary trace format.
func ExportTrace(w io.Writer, b Benchmark, length int64) error {
	rd, err := trace.NewReader(b, length)
	if err != nil {
		return err
	}
	return trace.WriteTrace(w, rd)
}

// ImportTrace deserializes a trace written by ExportTrace.
func ImportTrace(r io.Reader) (TraceSource, error) {
	return trace.ReadTrace(r)
}

// ProfileSource profiles an arbitrary trace source on this system.
func (s *System) ProfileSource(src TraceSource) (*Profile, error) {
	return sim.ProfileSource(src, s.cfg, sim.ProfileOptions{})
}

// SimulateSources runs the detailed multi-core simulator over arbitrary
// trace sources, one per core.
func (s *System) SimulateSources(srcs []TraceSource) (*Measurement, error) {
	res, err := sim.RunMulticoreSources(srcs, s.cfg, nil)
	if err != nil {
		return nil, err
	}
	sc := make([]float64, len(srcs))
	for i, src := range srcs {
		p, err := sim.ProfileSource(src, s.cfg, sim.ProfileOptions{})
		if err != nil {
			return nil, err
		}
		sc[i] = p.CPI()
	}
	m := &Measurement{Benchmarks: res.Benchmarks, SingleCPI: sc, MultiCPI: res.CPI}
	if m.Slowdown, err = metrics.Slowdowns(sc, res.CPI); err != nil {
		return nil, err
	}
	if m.STP, err = metrics.STP(sc, res.CPI); err != nil {
		return nil, err
	}
	if m.ANTT, err = metrics.ANTT(sc, res.CPI); err != nil {
		return nil, err
	}
	return m, nil
}
