// Package mppm is the public facade of the Multi-Program Performance
// Model reproduction (Van Craeynest & Eeckhout, "The Multi-Program
// Performance Model: Debunking Current Practice in Multi-Core
// Simulation", IISWC 2011).
//
// The package wires together the internal building blocks — synthetic
// benchmark traces, the trace-driven multi-core simulator, single-core
// profiling, cache contention models and the iterative MPPM solver —
// behind one evaluation API: build a Request naming workload mixes, an
// evaluation kind (predict, simulate or compare) and LLC
// configurations, and hand it to System.Eval:
//
//	sys := mppm.NewSystem(mppm.DefaultLLC())
//	mixes := []mppm.Mix{{"gamess", "lbm", "soplex", "mcf"}}
//	res, _ := sys.Eval(ctx, mppm.NewRequest(mppm.KindCompare, mixes))
//	sc := res.Scenarios[0]
//	fmt.Println(sc.Prediction.STP, sc.Measurement.STP)
//
// Predict scenarios evaluate the analytical model in well under a
// second per mix; Simulate scenarios run the detailed reference
// simulator; Compare runs both so model and simulation are directly
// comparable (the paper's Figure 4). Everything — single mixes,
// thousand-mix batches, design-space sweeps over every Table 2 LLC,
// stress searches — executes through one concurrent evaluation engine
// with bounded workers, context cancellation and singleflight profile
// caching, and EvalStream yields sweep scenarios incrementally. The
// pre-Request methods (Predict, Simulate, Sweep, ...) remain as thin
// deprecated wrappers over Eval.
package mppm

import (
	"context"
	"fmt"
	"io"
	"sync"

	"repro/internal/cache"
	"repro/internal/contention"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/metrics"
	"repro/internal/profile"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/store"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Re-exported building blocks. The aliases keep example and downstream
// code on a single import while the implementation lives in internal
// packages.
type (
	// Benchmark describes one synthetic benchmark (see internal/trace).
	Benchmark = trace.Spec
	// LLCConfig describes a last-level cache configuration.
	LLCConfig = cache.Config
	// Profile is a single-core simulation profile.
	Profile = profile.Profile
	// ProfileSet maps benchmark names to profiles.
	ProfileSet = profile.Set
	// Prediction is an MPPM model result.
	Prediction = core.Result
	// ModelOptions tunes the MPPM solver.
	ModelOptions = core.Options
	// Mix is a multi-program workload.
	Mix = workload.Mix
	// ContentionModel estimates sharing-induced conflict misses.
	ContentionModel = contention.Model
)

// Default simulator scale: the paper's 10M-instruction traces profiled
// in 200K-instruction intervals (a uniform 1/100 of the paper's 1B
// SimPoints).
const (
	DefaultTraceLength    = trace.DefaultTraceLength
	DefaultIntervalLength = profile.DefaultIntervalLength
)

// NewProfileSet builds a ProfileSet from profiles, keyed by benchmark
// name (useful with derived profiles, see Profile.DeriveAssociativity).
func NewProfileSet(ps ...*Profile) *ProfileSet { return profile.NewSet(ps...) }

// ReadProfileSet deserializes a profile set written by
// (*ProfileSet).WriteJSON, validating every profile.
func ReadProfileSet(r io.Reader) (*ProfileSet, error) {
	return profile.ReadSetJSON(r)
}

// Benchmarks returns the 29 synthetic SPEC CPU2006 stand-ins.
func Benchmarks() []Benchmark { return trace.Suite() }

// BenchmarkNames returns the suite's benchmark names, sorted.
func BenchmarkNames() []string { return trace.SuiteNames() }

// BenchmarkByName returns one benchmark by name.
func BenchmarkByName(name string) (Benchmark, error) { return trace.ByName(name) }

// LLCConfigs returns the paper's Table 2 configurations.
func LLCConfigs() []LLCConfig { return cache.LLCConfigs() }

// LLCConfigByName returns a Table 2 configuration by name ("config#1".."config#6").
func LLCConfigByName(name string) (LLCConfig, error) { return cache.LLCConfigByName(name) }

// DefaultLLC returns configuration #1, the paper's default (smallest LLC,
// chosen "to stress our model").
func DefaultLLC() LLCConfig { return cache.LLCConfigs()[0] }

// ContentionModels returns the available cache contention models, the
// paper's FOA first.
func ContentionModels() []ContentionModel { return contention.Models() }

// ContentionModelByName returns a contention model by name.
func ContentionModelByName(name string) (ContentionModel, error) {
	return contention.ByName(name)
}

// System is a fully configured machine: the Table 1 baseline core and
// private caches plus one default shared LLC configuration, at a given
// trace scale. All evaluation runs through one lazily-built engine, so
// every Eval on a System shares cached single-core profiles and one
// bounded worker pool.
type System struct {
	cfg       sim.Config
	workers   int
	storeDir  string
	peerFetch func(kind, key string) ([]byte, error)

	engOnce sync.Once
	eng     *engine.Engine
	store   *store.Store
}

// SystemOption configures a System at construction.
type SystemOption func(*System)

// WithScale sets custom trace and profiling interval lengths (useful
// for quick experimentation; accuracy conclusions should use the
// default scale). Zero values keep the defaults.
func WithScale(traceLength, intervalLength int64) SystemOption {
	return func(s *System) {
		if traceLength != 0 {
			s.cfg.TraceLength = traceLength
		}
		if intervalLength != 0 {
			s.cfg.IntervalLength = intervalLength
		}
	}
}

// WithWorkers bounds the evaluation worker pool; zero or negative means
// GOMAXPROCS.
func WithWorkers(n int) SystemOption {
	return func(s *System) { s.workers = n }
}

// WithStore attaches a persistent artifact store rooted at dir: the
// engine's recording and profile caches gain an on-disk load-through
// tier, so profiles computed by earlier processes (other replicas, a
// previous run, `mppm cache warm`) are loaded instead of recomputed,
// and everything this system computes is persisted for the next one.
// The directory is created on first write; store failures never fail an
// evaluation (see StoreStats). An empty dir disables the store.
func WithStore(dir string) SystemOption {
	return func(s *System) { s.storeDir = dir }
}

// WithPeerFetch installs a fleet peer-fetch hook under the persistent
// store (see WithStore, without which it is a no-op): when a local
// artifact load misses, the store asks f — typically a fleet.Fetcher
// bound to the peer replicas — for the raw encoded bytes, validates
// them exactly like a local file and persists them. A cold replica
// joining a warm fleet thereby warms over the wire instead of re-running
// profiling frontends. kind is "recordings" or "profiles"; key is the
// artifact's content address. f must be safe for concurrent use.
func WithPeerFetch(f func(kind, key string) ([]byte, error)) SystemOption {
	return func(s *System) { s.peerFetch = f }
}

// NewSystem builds a System with the paper's baseline core/private-cache
// parameters and the given default LLC. An invalid WithScale surfaces
// as ErrBadConfig from the first evaluation.
func NewSystem(llc LLCConfig, opts ...SystemOption) *System {
	s := &System{cfg: sim.DefaultConfig(llc)}
	for _, o := range opts {
		o(s)
	}
	return s
}

// NewSystemScaled builds a System with custom trace and profiling
// interval lengths, validating them eagerly. Unlike WithScale, zero
// values are invalid rather than defaults.
func NewSystemScaled(llc LLCConfig, traceLength, intervalLength int64) (*System, error) {
	s := NewSystem(llc)
	s.cfg.TraceLength = traceLength
	s.cfg.IntervalLength = intervalLength
	if err := s.cfg.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}

// LLC returns the system's default LLC configuration (requests override
// it per call with WithConfigs).
func (s *System) LLC() LLCConfig { return s.cfg.Hierarchy.LLC }

// TraceLength returns the per-benchmark trace length in instructions.
func (s *System) TraceLength() int64 { return s.cfg.TraceLength }

// engine returns the system's shared evaluation engine, built on first
// use at the system's trace scale.
func (s *System) engine() *engine.Engine {
	s.engOnce.Do(func() {
		if s.storeDir != "" {
			s.store = store.Open(s.storeDir)
			if s.peerFetch != nil {
				f := s.peerFetch
				s.store.SetPeerFetch(func(kind store.ArtifactKind, key string) ([]byte, error) {
					return f(string(kind), key)
				})
			}
		}
		s.eng = engine.New(engine.Config{
			TraceLength:    s.cfg.TraceLength,
			IntervalLength: s.cfg.IntervalLength,
			Workers:        s.workers,
			Store:          s.store,
		})
	})
	return s.eng
}

// EngineStats reports the evaluation engine's cache-miss counters: how
// many single-core profiles and detailed simulations were actually
// computed (as opposed to served from the singleflight caches or the
// persistent store), how many profiling-frontend recordings (full trace
// passes) backed those profiles, and how many entries the in-memory
// caches currently retain.
type EngineStats struct {
	RecordingComputations  int64
	ProfileComputations    int64
	SimulationComputations int64

	CachedRecordings  int
	CachedProfiles    int
	CachedSimulations int
}

// EngineStats returns the system's evaluation-engine counters.
func (s *System) EngineStats() EngineStats {
	eng := s.engine()
	st := EngineStats{
		RecordingComputations:  eng.RecordingComputations(),
		ProfileComputations:    eng.ProfileComputations(),
		SimulationComputations: eng.SimulationComputations(),
	}
	st.CachedRecordings, st.CachedProfiles, st.CachedSimulations = eng.CacheSizes()
	return st
}

// Ready reports whether the system can serve evaluation traffic: the
// engine is constructed (building it on first call) and, when a
// persistent store is configured, its directory is usable. It is the
// readiness probe behind mppmd's GET /v1/readyz — cheap enough for a
// load balancer to poll.
func (s *System) Ready() error {
	eng := s.engine()
	if st := eng.Store(); st != nil {
		return st.Ready()
	}
	return nil
}

// StoreStats are the persistent artifact store's operation counters
// (hits, misses, rejected artifacts, saves).
type StoreStats = store.Stats

// StoreStats returns the artifact store's counters and its root
// directory; ok is false when the system runs without a store.
func (s *System) StoreStats() (stats StoreStats, dir string, ok bool) {
	s.engine() // ensure the store handle exists
	if s.store == nil {
		return StoreStats{}, "", false
	}
	return s.store.Stats(), s.store.Dir(), true
}

// ArtifactData returns the raw encoded bytes of one persisted artifact
// by kind ("recordings" or "profiles") and content key — the payload of
// the fleet artifact-exchange endpoint, served byte-exact so the codec
// checksum protects the artifact across the wire. It fails when the
// system runs without a store, on a malformed reference
// (store.ErrBadArtifactRef) or when the artifact is absent
// (fs.ErrNotExist).
func (s *System) ArtifactData(kind, key string) ([]byte, error) {
	s.engine()
	if s.store == nil {
		return nil, fmt.Errorf("mppm: no artifact store configured: %w", store.ErrBadArtifactRef)
	}
	return s.store.ReadRaw(store.ArtifactKind(kind), key)
}

// Warm pre-computes the single-core profiles of the whole synthetic
// suite under the given LLC configurations (the system's default LLC
// when none are given), so subsequent Eval traffic finds every profile
// already cached. Each benchmark's profiling frontend runs once and the
// per-config profiles are cheap replays of it, making an N-config warmup
// cost about one full profiling pass — the record-once / replay-per-
// config cold-start path. It returns the number of (benchmark, config)
// profiles now warm.
func (s *System) Warm(ctx context.Context, configs ...LLCConfig) (int, error) {
	if len(configs) == 0 {
		configs = []LLCConfig{s.LLC()}
	}
	// Deduplicate so the returned count matches the distinct
	// (benchmark, config) pairs actually warmed.
	seen := make(map[LLCConfig]bool, len(configs))
	distinct := configs[:0:0]
	for _, c := range configs {
		if !seen[c] {
			seen[c] = true
			distinct = append(distinct, c)
		}
	}
	suite := trace.Suite()
	if _, err := s.engine().ProfileConfigs(ctx, suite, distinct); err != nil {
		return 0, err
	}
	return len(suite) * len(distinct), nil
}

// Profile runs one benchmark in isolation and returns its single-core
// profile (CPI, memory CPI and LLC stack distance counters per
// interval), computed at most once per (benchmark, LLC) on this System.
func (s *System) Profile(b Benchmark) (*Profile, error) {
	return s.engine().Profile(context.Background(), b, s.LLC())
}

// ProfileAll profiles many benchmarks in parallel — the paper's one-time
// cost preceding any number of model evaluations. The profiles land in
// the same engine cache every Eval draws from, so explicit profiling is
// an optimization, never a requirement.
func (s *System) ProfileAll(bs []Benchmark) (*ProfileSet, error) {
	return s.engine().ProfileSpecs(context.Background(), bs, s.LLC())
}

// Measurement reports a detailed multi-core simulation in the same shape
// as a Prediction, so the two are directly comparable.
type Measurement struct {
	Benchmarks []string
	SingleCPI  []float64
	MultiCPI   []float64
	Slowdown   []float64
	STP        float64
	ANTT       float64
}

// singleScenario evaluates one mix through Eval and returns its scenario.
func (s *System) singleScenario(kind Kind, mix []string, opts ...Option) (*Scenario, error) {
	res, err := s.Eval(context.Background(), NewRequest(kind, []Mix{Mix(mix)}, opts...))
	if err != nil {
		return nil, err
	}
	sc := &res.Scenarios[0]
	if sc.Err != nil {
		return nil, sc.Err
	}
	return sc, nil
}

// Predict evaluates MPPM for the mix using default model options.
//
// Deprecated: use Eval with a KindPredict Request; pass the set with
// WithProfiles (or omit it to use the engine's profile cache).
func (s *System) Predict(set *ProfileSet, mix []string) (*Prediction, error) {
	return s.PredictWithOptions(set, mix, ModelOptions{})
}

// PredictWithOptions evaluates MPPM with explicit solver options.
//
// Deprecated: use Eval with WithProfiles and WithOptions.
func (s *System) PredictWithOptions(set *ProfileSet, mix []string, opts ModelOptions) (*Prediction, error) {
	sc, err := s.singleScenario(KindPredict, mix, WithProfiles(set), WithOptions(opts))
	if err != nil {
		return nil, err
	}
	return sc.Prediction, nil
}

// SimulateWithProfiles runs the detailed multi-core simulator for a mix
// and derives STP/ANTT against the given profile set's single-core
// CPIs. When set is nil the single-core CPIs come from the engine's
// profile cache.
//
// Deprecated: use Eval with a KindSimulate Request.
func (s *System) SimulateWithProfiles(set *ProfileSet, mix []string) (*Measurement, error) {
	sc, err := s.singleScenario(KindSimulate, mix, WithProfiles(set))
	if err != nil {
		return nil, err
	}
	return sc.Measurement, nil
}

// Simulate is SimulateWithProfiles with engine-cached single-core
// profiling.
//
// Deprecated: use Eval with a KindSimulate Request.
func (s *System) Simulate(mix []string) (*Measurement, error) {
	return s.SimulateWithProfiles(nil, mix)
}

// Compare holds a side-by-side prediction and measurement for one mix.
type Compare struct {
	Prediction  *Prediction
	Measurement *Measurement
}

// STPError returns the prediction's relative STP error.
func (c Compare) STPError() float64 {
	return (c.Prediction.STP - c.Measurement.STP) / c.Measurement.STP
}

// ANTTError returns the prediction's relative ANTT error.
func (c Compare) ANTTError() float64 {
	return (c.Prediction.ANTT - c.Measurement.ANTT) / c.Measurement.ANTT
}

// CompareMix predicts and simulates the same mix.
//
// Deprecated: use Eval with a KindCompare Request; each Scenario then
// carries both Prediction and Measurement plus STPError/ANTTError.
func (s *System) CompareMix(set *ProfileSet, mix []string) (*Compare, error) {
	sc, err := s.singleScenario(KindCompare, mix, WithProfiles(set))
	if err != nil {
		return nil, err
	}
	return &Compare{Prediction: sc.Prediction, Measurement: sc.Measurement}, nil
}

// ConfidenceReport summarizes MPPM predictions over many mixes with 95%
// confidence bounds — the paper's contribution #3 ("MPPM provides
// confidence bounds on its performance estimates").
type ConfidenceReport struct {
	Mixes int
	STP   stats.ConfidenceInterval
	ANTT  stats.ConfidenceInterval
}

// Confidence computes a 95% confidence report over a slice of
// predictions (at least two).
func Confidence(preds []*Prediction) (*ConfidenceReport, error) {
	stp := make([]float64, len(preds))
	antt := make([]float64, len(preds))
	for i, p := range preds {
		stp[i] = p.STP
		antt[i] = p.ANTT
	}
	ciS, err := stats.MeanCI(stp, 0.95)
	if err != nil {
		return nil, err
	}
	ciA, err := stats.MeanCI(antt, 0.95)
	if err != nil {
		return nil, err
	}
	return &ConfidenceReport{Mixes: len(preds), STP: ciS, ANTT: ciA}, nil
}

// PredictMany evaluates MPPM over many mixes concurrently and returns
// the per-mix results plus a confidence report.
//
// Deprecated: use Eval with a KindPredict Request over the mixes, then
// Result.Predictions and Result.Confidence.
func (s *System) PredictMany(set *ProfileSet, mixes []Mix, opts ModelOptions) ([]*Prediction, *ConfidenceReport, error) {
	res, err := s.Eval(context.Background(),
		NewRequest(KindPredict, mixes, WithProfiles(set), WithOptions(opts)))
	if err != nil {
		return nil, nil, err
	}
	preds, err := res.Predictions()
	if err != nil {
		return nil, nil, err
	}
	rep, err := res.Confidence()
	if err != nil {
		return nil, nil, err
	}
	return preds, rep, nil
}

// PredictBatch evaluates MPPM for many mixes concurrently on the
// system's LLC, bounded by the worker pool, with results aligned to the
// input order. Single-core profiles are computed at most once per
// benchmark across all calls on this System; cancel ctx to abort
// mid-batch.
//
// Deprecated: use Eval with a KindPredict Request.
func (s *System) PredictBatch(ctx context.Context, mixes []Mix) ([]*Prediction, error) {
	return s.PredictBatchWithOptions(ctx, mixes, ModelOptions{})
}

// PredictBatchWithOptions is PredictBatch with explicit solver options.
//
// Deprecated: use Eval with WithOptions.
func (s *System) PredictBatchWithOptions(ctx context.Context, mixes []Mix, opts ModelOptions) ([]*Prediction, error) {
	res, err := s.Eval(ctx, NewRequest(KindPredict, mixes, WithOptions(opts)))
	if err != nil {
		return nil, err
	}
	return res.Predictions()
}

// SweepResult reports a design-space sweep: every mix evaluated on
// every LLC configuration.
type SweepResult struct {
	Configs []LLCConfig
	Mixes   []Mix
	// Predictions[c][m] is Mixes[m] evaluated on Configs[c].
	Predictions [][]*Prediction
}

// MeanSTP returns the average predicted STP of configuration c over all
// mixes — the Section 5 design-ranking quantity.
func (r *SweepResult) MeanSTP(c int) float64 {
	if len(r.Predictions[c]) == 0 {
		return 0
	}
	sum := 0.0
	for _, p := range r.Predictions[c] {
		sum += p.STP
	}
	return sum / float64(len(r.Predictions[c]))
}

// Sweep evaluates MPPM for every mix on every LLC configuration (nil
// configs means all six Table 2 configurations).
//
// Deprecated: use Eval with WithConfigs — or EvalStream to consume a
// large sweep incrementally.
func (s *System) Sweep(ctx context.Context, mixes []Mix, configs []LLCConfig) (*SweepResult, error) {
	return s.SweepWithOptions(ctx, mixes, configs, ModelOptions{})
}

// SweepWithOptions is Sweep with explicit solver options.
//
// Deprecated: use Eval with WithConfigs and WithOptions.
func (s *System) SweepWithOptions(ctx context.Context, mixes []Mix, configs []LLCConfig, opts ModelOptions) (*SweepResult, error) {
	if configs == nil {
		configs = LLCConfigs()
	}
	res, err := s.Eval(ctx, NewRequest(KindPredict, mixes, WithConfigs(configs...), WithOptions(opts)))
	if err != nil {
		return nil, err
	}
	out := &SweepResult{
		Configs:     res.Configs,
		Mixes:       res.Mixes,
		Predictions: make([][]*Prediction, len(res.Configs)),
	}
	for c := range res.Configs {
		row := make([]*Prediction, len(res.Mixes))
		for m := range res.Mixes {
			sc := res.At(c, m)
			if sc.Err != nil {
				return nil, sc.Err
			}
			row[m] = sc.Prediction
		}
		out.Predictions[c] = row
	}
	return out, nil
}

// RandomMixes draws deterministic random workload mixes over the suite.
func RandomMixes(count, cores int, seed int64) ([]Mix, error) {
	s, err := workload.NewSampler(trace.SuiteNames(), seed)
	if err != nil {
		return nil, err
	}
	return s.RandomMixes(count, cores, true)
}

// NumMixes returns C(N+M-1, M): the number of distinct M-program mixes
// over N benchmarks (the combinatorial explosion of Section 1).
func NumMixes(benchmarks, cores int) (int64, error) {
	return workload.NumMixes(benchmarks, cores)
}

// StressMix describes one low-STP workload found by StressSearch.
type StressMix struct {
	Mix Mix
	STP float64
	// WorstProgram and WorstSlowdown identify the program the model says
	// suffers most.
	WorstProgram  string
	WorstSlowdown float64
}

// StressSearch evaluates MPPM over the given mixes and returns the k
// lowest-STP workloads, worst first — the Section 6 use case: finding
// stress workloads without simulating them.
//
// Deprecated: use Eval with a KindPredict Request and WithTopK(k).
func (s *System) StressSearch(set *ProfileSet, mixes []Mix, k int) ([]StressMix, error) {
	if k < 1 {
		return nil, fmt.Errorf("mppm: k < 1: %w", ErrBadConfig)
	}
	res, err := s.Eval(context.Background(),
		NewRequest(KindPredict, mixes, WithProfiles(set), WithTopK(k)))
	if err != nil {
		return nil, err
	}
	out := make([]StressMix, 0, k)
	for i := range res.Scenarios {
		sc := &res.Scenarios[i]
		if sc.Err != nil {
			return nil, sc.Err
		}
		name, slow := sc.Prediction.MaxSlowdown()
		out = append(out, StressMix{
			Mix: sc.Mix, STP: sc.Prediction.STP,
			WorstProgram: name, WorstSlowdown: slow,
		})
	}
	return out, nil
}

// Class labels a benchmark memory-intensive or compute-intensive, the
// way Section 5's category-structured practice buckets the suite.
type Class = workload.Class

// Classification constants.
const (
	Compute = workload.Compute
	Memory  = workload.Memory
)

// Classify labels every profiled benchmark by memory intensity
// (MemCPI/CPI >= threshold means memory-intensive). Pass
// DefaultMemIntensityThreshold for the standard split.
func Classify(set *ProfileSet, threshold float64) map[string]Class {
	return workload.Classify(set, threshold)
}

// DefaultMemIntensityThreshold is the standard MEM/COMP split point.
const DefaultMemIntensityThreshold = workload.DefaultMemIntensityThreshold

// TraceSource is a replayable memory-reference stream; synthetic
// benchmarks, recorded traces and user implementations all satisfy it.
type TraceSource = trace.Source

// ExportTrace serializes a benchmark's reference stream at the given
// length to w in the repository's binary trace format.
func ExportTrace(w io.Writer, b Benchmark, length int64) error {
	rd, err := trace.NewReader(b, length)
	if err != nil {
		return err
	}
	return trace.WriteTrace(w, rd)
}

// ImportTrace deserializes a trace written by ExportTrace.
func ImportTrace(r io.Reader) (TraceSource, error) {
	return trace.ReadTrace(r)
}

// ProfileSource profiles an arbitrary trace source on this system.
func (s *System) ProfileSource(src TraceSource) (*Profile, error) {
	return s.engine().ProfileSource(context.Background(), src, s.LLC())
}

// SimulateSources runs the detailed multi-core simulator over arbitrary
// trace sources, one per core.
func (s *System) SimulateSources(srcs []TraceSource) (*Measurement, error) {
	ctx := context.Background()
	res, err := s.engine().SimulateSources(ctx, srcs, s.LLC())
	if err != nil {
		return nil, err
	}
	sc := make([]float64, len(srcs))
	for i, src := range srcs {
		p, err := s.engine().ProfileSource(ctx, src, s.LLC())
		if err != nil {
			return nil, err
		}
		sc[i] = p.CPI()
	}
	m := &Measurement{Benchmarks: res.Benchmarks, SingleCPI: sc, MultiCPI: res.CPI}
	if m.Slowdown, err = metrics.Slowdowns(sc, res.CPI); err != nil {
		return nil, err
	}
	if m.STP, err = metrics.STP(sc, res.CPI); err != nil {
		return nil, err
	}
	if m.ANTT, err = metrics.ANTT(sc, res.CPI); err != nil {
		return nil, err
	}
	return m, nil
}
