package mppm_test

import (
	"fmt"

	mppm "repro"
)

// ExampleNumMixes reproduces the paper's Section 1 arithmetic: the
// number of possible multi-program workloads explodes with core count.
func ExampleNumMixes() {
	for _, cores := range []int{2, 4, 8} {
		n, _ := mppm.NumMixes(29, cores)
		fmt.Printf("%d cores: %d possible workloads\n", cores, n)
	}
	// Output:
	// 2 cores: 435 possible workloads
	// 4 cores: 35960 possible workloads
	// 8 cores: 30260340 possible workloads
}

// ExampleLLCConfigs lists the paper's Table 2 design space.
func ExampleLLCConfigs() {
	for _, c := range mppm.LLCConfigs() {
		fmt.Printf("%s: %dKB %d-way, %d cycles\n",
			c.Name, c.SizeBytes/1024, c.Ways, c.LatencyCycles)
	}
	// Output:
	// config#1: 512KB 8-way, 16 cycles
	// config#2: 512KB 16-way, 20 cycles
	// config#3: 1024KB 8-way, 18 cycles
	// config#4: 1024KB 16-way, 22 cycles
	// config#5: 2048KB 8-way, 20 cycles
	// config#6: 2048KB 16-way, 24 cycles
}

// ExampleBenchmarkNames shows the synthetic SPEC CPU2006 stand-ins.
func ExampleBenchmarkNames() {
	names := mppm.BenchmarkNames()
	fmt.Println(len(names), "benchmarks, first three:", names[0], names[1], names[2])
	// Output:
	// 29 benchmarks, first three: GemsFDTD astar bwaves
}
